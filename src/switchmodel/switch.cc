#include "switchmodel/switch.hh"

#include <algorithm>
#include <cstring>

#include "net/token_io.hh"
#include "snapshot/state_io.hh"

namespace firesim
{

Switch::Switch(SwitchConfig config)
    : cfg(std::move(config))
{
    if (cfg.ports == 0)
        fatal("switch '%s' needs at least one port", cfg.name.c_str());
    assemblers.resize(cfg.ports);
    outputs.resize(cfg.ports);
    portDown_.assign(cfg.ports, false);
    // Egress slicing: ceil(ports / slicePorts) groups, but only when
    // that actually yields more than one (a 4-port switch at the
    // default group size stays on the plain advance() path).
    if (cfg.slicePorts > 0 && cfg.ports > cfg.slicePorts)
        sliceCount_ = (cfg.ports + cfg.slicePorts - 1) / cfg.slicePorts;
    sliceScratch.resize(sliceCount_);
}

void
Switch::setPortDown(uint32_t port, bool down)
{
    if (port >= cfg.ports)
        fatal("setPortDown(%u) on %u-port switch '%s'", port, cfg.ports,
              cfg.name.c_str());
    if (portDown_[port] == down)
        return;
    portDown_[port] = down;
    ++stats_.portTransitions;
    if (down) {
        // The cable is dead: lose any half-assembled ingress frame and
        // everything buffered for egress on this port.
        assemblers[port].reset();
        OutputPort &out = outputs[port];
        stats_.faultPacketsDroppedOut += out.queue.size();
        out.queue.clear();
        if (out.active) {
            ++stats_.faultPacketsDroppedOut;
            out.active.reset();
            out.activePos = 0;
        }
    }
}

bool
Switch::portUp(uint32_t port) const
{
    FS_ASSERT(port < cfg.ports, "portUp(%u) on %u-port switch", port,
              cfg.ports);
    return !portDown_[port];
}

void
Switch::addMacEntry(MacAddr mac, uint32_t port)
{
    if (port >= cfg.ports)
        fatal("MAC entry for %s names port %u on a %u-port switch",
              mac.str().c_str(), port, cfg.ports);
    macTable[mac.value] = port;
}

std::optional<uint32_t>
Switch::lookupMac(MacAddr mac) const
{
    auto it = macTable.find(mac.value);
    if (it == macTable.end())
        return std::nullopt;
    return it->second;
}

void
Switch::advance(Cycles window_start, Cycles window,
                const std::vector<const TokenBatch *> &in,
                std::vector<TokenBatch> &out)
{
    FS_ASSERT(in.size() == cfg.ports && out.size() == cfg.ports,
              "switch %s handed %zu/%zu batches for %u ports",
              cfg.name.c_str(), in.size(), out.size(), cfg.ports);
    ingress(window_start, in);
    switchingStep();
    egress(window_start, window, out);
}

void
Switch::advanceBegin(Cycles window_start, Cycles window,
                     const std::vector<const TokenBatch *> &in,
                     std::vector<TokenBatch> &out)
{
    (void)window;
    FS_ASSERT(in.size() == cfg.ports && out.size() == cfg.ports,
              "switch %s handed %zu/%zu batches for %u ports",
              cfg.name.c_str(), in.size(), out.size(), cfg.ports);
    // The serial prologue owns the shared state (assemblers, the
    // pending priority queue, output queues, stats) exclusively — it is
    // a single advance unit, so updating stats_ directly is safe here.
    ingress(window_start, in);
    switchingStep();
}

void
Switch::advanceSlice(uint32_t slice, Cycles window_start, Cycles window,
                     const std::vector<const TokenBatch *> &in,
                     std::vector<TokenBatch> &out)
{
    (void)in;
    FS_ASSERT(slice < sliceCount_, "switch %s slice %u of %u",
              cfg.name.c_str(), slice, sliceCount_);
    Cycles window_end = window_start + window;
    uint32_t lo = slice * cfg.slicePorts;
    uint32_t hi = std::min(cfg.ports, lo + cfg.slicePorts);
    EgressScratch &scratch = sliceScratch[slice];
    scratch.clear();
    for (uint32_t p = lo; p < hi; ++p)
        egressPort(p, window_start, window_end, out[p], scratch);
}

void
Switch::advanceMerge(Cycles window_start, Cycles window,
                     std::vector<TokenBatch> &out)
{
    (void)window_start;
    (void)window;
    (void)out;
    for (const EgressScratch &scratch : sliceScratch)
        foldScratch(scratch);
}

void
Switch::ingress(Cycles window_start, const std::vector<const TokenBatch *> &in)
{
    // The paper runs this loop with one OpenMP thread per port; the
    // per-port work is independent, so serial execution is equivalent.
    for (uint32_t p = 0; p < cfg.ports; ++p) {
        const TokenBatch &batch = *in[p];
        FS_ASSERT(batch.start == window_start,
                  "stale input batch at %s:%u", cfg.name.c_str(), p);
        if (portDown_[p]) {
            stats_.faultFlitsDroppedIn += batch.flits.size();
            continue;
        }
        for (const Flit &flit : batch.flits) {
            EthFrame frame;
            if (assemblers[p].feed(flit, batch.absCycle(flit), frame)) {
                ++stats_.packetsIn;
                stats_.bytesIn += frame.size();
                // Timestamp = arrival cycle of last token + minimum
                // port-to-port switching latency (Section III-B1).
                QueuedPacket qp;
                qp.release = frame.timestamp + cfg.minLatency;
                qp.seq = nextSeq++;
                qp.frame = std::move(frame);
                pending.push(std::move(qp));
            }
        }
    }
}

void
Switch::route(const EthFrame &frame, std::vector<uint32_t> &out_ports) const
{
    MacAddr dst = frame.dst();
    if (!dst.isBroadcast()) {
        auto port = lookupMac(dst);
        if (port) {
            out_ports.push_back(*port);
            return;
        }
        // Unknown unicast: flood, like a learning switch without an
        // entry. The manager always fully populates tables, so this
        // path only triggers in hand-built experiments.
    }
    for (uint32_t p = 0; p < cfg.ports; ++p)
        out_ports.push_back(p);
}

void
Switch::insertInQueue(OutputPort &port, QueuedPacket &&packet)
{
    port.queue.push_back(std::move(packet));
}

void
Switch::switchingStep()
{
    // Drain the timestamp-sorted priority queue into output port
    // buffers via the forwarding policy (default: static MAC table,
    // duplicating for broadcast/flood).
    std::vector<uint32_t> out_ports;
    while (!pending.empty()) {
        QueuedPacket qp = pending.top();
        pending.pop();
        out_ports.clear();
        route(qp.frame, out_ports);
        if (qp.frame.dst().isBroadcast())
            ++stats_.broadcasts;
        for (uint32_t p : out_ports)
            enqueueOutput(p, qp.frame, qp.release, qp.seq);
    }
}

void
Switch::enqueueOutput(uint32_t port, const EthFrame &frame, Cycles release,
                      uint64_t seq)
{
    FS_ASSERT(port < cfg.ports, "route() returned port %u of %u", port,
              cfg.ports);
    QueuedPacket qp;
    qp.frame = frame;
    qp.release = release;
    qp.seq = seq;
    insertInQueue(outputs[port], std::move(qp));
}

void
Switch::egress(Cycles window_start, Cycles window, std::vector<TokenBatch> &out)
{
    // Monolithic path: same per-port routine as the sliced path, with
    // one scratch folded immediately — identical arithmetic, identical
    // results.
    Cycles window_end = window_start + window;
    EgressScratch &scratch = sliceScratch[0];
    scratch.clear();
    for (uint32_t p = 0; p < cfg.ports; ++p)
        egressPort(p, window_start, window_end, out[p], scratch);
    foldScratch(scratch);
}

void
Switch::egressPort(uint32_t p, Cycles window_start, Cycles window_end,
                   TokenBatch &out, EgressScratch &scratch)
{
    OutputPort &port = outputs[p];
    if (portDown_[p]) {
        // Packets routed here after the port went down are lost.
        scratch.faultPacketsDroppedOut += port.queue.size();
        port.queue.clear();
        return;
    }
    if (port.cursor < window_start)
        port.cursor = window_start;

    while (port.cursor < window_end) {
        if (!port.active) {
            if (port.queue.empty())
                break;
            QueuedPacket &head = port.queue.front();
            if (head.release >= window_end) {
                // Cannot release anything more this window.
                break;
            }
            Cycles start = std::max(port.cursor, head.release);
            // Finite buffering: a packet that has waited longer than
            // the drop bound past its release time is discarded.
            if (start > head.release + cfg.dropBound) {
                ++scratch.packetsDropped;
                port.queue.pop_front();
                continue;
            }
            port.cursor = start;
            port.active = std::move(head);
            port.activePos = 0;
            port.queue.pop_front();
        }

        // Emit one token per cycle until the window closes or the
        // packet completes.
        const std::vector<uint8_t> &bytes = port.active->frame.bytes;
        while (port.cursor < window_end && port.activePos < bytes.size()) {
            Flit flit;
            size_t take =
                std::min<size_t>(kFlitBytes, bytes.size() - port.activePos);
            std::memcpy(flit.data.data(), bytes.data() + port.activePos,
                        take);
            flit.size = static_cast<uint8_t>(take);
            port.activePos += take;
            flit.last = port.activePos >= bytes.size();
            flit.offset = static_cast<uint32_t>(port.cursor - window_start);
            out.push(flit);
            ++port.cursor;
        }

        if (port.activePos >= bytes.size()) {
            ++scratch.packetsOut;
            scratch.bytesOut += bytes.size();
            port.active.reset();
            port.activePos = 0;
        } else {
            // Window full; resume this packet next round.
            break;
        }
    }
}

void
Switch::foldScratch(const EgressScratch &scratch)
{
    stats_.packetsOut += scratch.packetsOut;
    stats_.bytesOut += scratch.bytesOut;
    stats_.packetsDropped += scratch.packetsDropped;
    stats_.faultPacketsDroppedOut += scratch.faultPacketsDroppedOut;
    bytesOutSinceQuery += scratch.bytesOut;
}

uint64_t
Switch::takeBytesOutDelta()
{
    uint64_t delta = bytesOutSinceQuery;
    bytesOutSinceQuery = 0;
    return delta;
}

void
Switch::registerStats(StatRegistry &registry,
                      const std::string &prefix) const
{
    registry.registerCounter(prefix + ".packetsIn", stats_.packetsIn);
    registry.registerCounter(prefix + ".packetsOut", stats_.packetsOut);
    registry.registerCounter(prefix + ".packetsDropped",
                             stats_.packetsDropped);
    registry.registerCounter(prefix + ".bytesIn", stats_.bytesIn);
    registry.registerCounter(prefix + ".bytesOut", stats_.bytesOut);
    registry.registerCounter(prefix + ".broadcasts", stats_.broadcasts);
    registry.registerCounter(prefix + ".faultFlitsDroppedIn",
                             stats_.faultFlitsDroppedIn);
    registry.registerCounter(prefix + ".faultPacketsDroppedOut",
                             stats_.faultPacketsDroppedOut);
    registry.registerCounter(prefix + ".portTransitions",
                             stats_.portTransitions);
}

// ---- Checkpoint support ---------------------------------------------

void
Switch::snapshotSave(Serializer &s) const
{
    auto savePacket = [&s](const QueuedPacket &p) {
        saveFrame(s, p.frame);
        s.putU(p.release);
        s.putU(p.seq);
    };

    s.putU(cfg.ports);
    s.putU(macTable.size());
    for (const auto &[mac, port] : macTable) {
        s.putU(mac);
        s.putU(port);
    }
    for (uint32_t p = 0; p < cfg.ports; ++p)
        s.putB(portDown_[p]);
    for (const FrameAssembler &a : assemblers)
        saveAssembler(s, a);

    // The pending heap in canonical (release, seq) order: the physical
    // heap layout depends on insertion history, but the comparator is a
    // total order, so a heap rebuilt from the sorted sequence pops
    // identically.
    std::vector<QueuedPacket> pend(pqUnderlying(pending));
    std::sort(pend.begin(), pend.end(),
              [](const QueuedPacket &a, const QueuedPacket &b) {
                  if (a.release != b.release)
                      return a.release < b.release;
                  return a.seq < b.seq;
              });
    s.putU(pend.size());
    for (const QueuedPacket &p : pend)
        savePacket(p);

    for (const OutputPort &out : outputs) {
        s.putU(out.queue.size());
        for (const QueuedPacket &p : out.queue)
            savePacket(p);
        s.putB(out.active.has_value());
        if (out.active) {
            savePacket(*out.active);
            s.putU(out.activePos);
        }
        s.putU(out.cursor);
    }

    s.putU(nextSeq);
    s.putU(bytesOutSinceQuery);
    saveCounter(s, stats_.packetsIn);
    saveCounter(s, stats_.packetsOut);
    saveCounter(s, stats_.packetsDropped);
    saveCounter(s, stats_.bytesIn);
    saveCounter(s, stats_.bytesOut);
    saveCounter(s, stats_.broadcasts);
    saveCounter(s, stats_.faultFlitsDroppedIn);
    saveCounter(s, stats_.faultPacketsDroppedOut);
    saveCounter(s, stats_.portTransitions);
}

void
Switch::snapshotRestore(Deserializer &d, SnapshotErrors &err)
{
    expectEq(err, cfg.name + " ports", (uint64_t)cfg.ports, d.getU());
    if (!err.ok())
        return;

    auto readPacket = [&d]() {
        QueuedPacket p;
        p.frame = restoreFrame(d);
        p.release = d.getU();
        p.seq = d.getU();
        return p;
    };

    macTable.clear();
    uint64_t n = d.getU();
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
        uint64_t mac = d.getU();
        macTable[mac] = static_cast<uint32_t>(d.getU());
    }
    for (uint32_t p = 0; p < cfg.ports; ++p)
        portDown_[p] = d.getB();
    for (FrameAssembler &a : assemblers)
        restoreAssembler(d, a);

    pending = {};
    n = d.getU();
    for (uint64_t i = 0; i < n && d.ok(); ++i)
        pending.push(readPacket());

    for (OutputPort &out : outputs) {
        out.queue.clear();
        n = d.getU();
        for (uint64_t i = 0; i < n && d.ok(); ++i)
            out.queue.push_back(readPacket());
        out.active.reset();
        out.activePos = 0;
        if (d.getB()) {
            out.active = readPacket();
            out.activePos = d.getU();
        }
        out.cursor = d.getU();
    }

    nextSeq = d.getU();
    bytesOutSinceQuery = d.getU();
    restoreCounter(d, stats_.packetsIn);
    restoreCounter(d, stats_.packetsOut);
    restoreCounter(d, stats_.packetsDropped);
    restoreCounter(d, stats_.bytesIn);
    restoreCounter(d, stats_.bytesOut);
    restoreCounter(d, stats_.broadcasts);
    restoreCounter(d, stats_.faultFlitsDroppedIn);
    restoreCounter(d, stats_.faultPacketsDroppedOut);
    restoreCounter(d, stats_.portTransitions);
    if (!d.ok())
        err.add(cfg.name + ": " + d.error());
}

} // namespace firesim
