/**
 * @file
 * Store-and-forward Ethernet switch model (paper Section III-B1).
 *
 * The switch processes network flits cycle-by-cycle with a parametrizable
 * number of ports. At ingress, tokens that carry valid data are buffered
 * into full packets, timestamped with the arrival cycle of their last
 * token plus a configurable minimum switching latency, and placed into
 * input packet queues. A global switching step pushes all input packets
 * through a priority queue sorted on timestamp and drains it into output
 * port buffers based on a static MAC address table (duplicating packets
 * for broadcast). Output ports release packets in token form when the
 * packet's release timestamp is <= the port's current cycle and there is
 * space in the output token buffer; because the output token buffer is
 * of fixed size each iteration (one token per cycle of the window),
 * congestion is modeled automatically. A packet whose release has been
 * delayed beyond a configurable bound is dropped, modeling finite
 * buffering.
 *
 * The paper parallelizes ingress with one OpenMP thread per port; this
 * reproduction performs the same phases serially (the phases are
 * data-parallel, so results are identical).
 */

#ifndef FIRESIM_SWITCH_SWITCH_HH
#define FIRESIM_SWITCH_SWITCH_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "net/eth.hh"
#include "net/fabric.hh"
#include "telemetry/stat_registry.hh"

namespace firesim
{

class Serializer;
class Deserializer;
struct SnapshotErrors;

/** Runtime-configurable switch parameters (no resynthesis needed). */
struct SwitchConfig
{
    std::string name = "switch";
    /** Number of link ports. */
    uint32_t ports = 4;
    /** Minimum port-to-port switching latency in cycles. */
    Cycles minLatency = 10;
    /**
     * Upper bound on the delay between a packet's release timestamp and
     * the cycle it would actually be emitted; packets delayed longer are
     * dropped (finite output buffering). Default ~64 KiB per port at
     * 8 B/cycle.
     */
    Cycles dropBound = 8192;
    /**
     * Output ports per egress slice when the fabric runs this switch as
     * a sliced endpoint (TokenEndpoint::advanceSliceCount): a switch
     * with more ports than this splits its egress across
     * ceil(ports / slicePorts) concurrent advance units, after a serial
     * ingress/switching prologue. 0 disables slicing (one monolithic
     * advance). The default turns a 32-port ToR into 8 slices while
     * leaving the 4-port switches of small topologies monolithic.
     * Results are bit-identical for every value.
     */
    uint32_t slicePorts = 4;
};

/** Counters exposed for experiments (e.g. Figure 6's root-switch BW). */
struct SwitchStats
{
    Counter packetsIn;
    Counter packetsOut;
    Counter packetsDropped;
    Counter bytesIn;
    Counter bytesOut;
    Counter broadcasts;
    /** Flits discarded at the ingress of an administratively-down port
     *  (fault injection, src/fault). */
    Counter faultFlitsDroppedIn;
    /** Queued packets discarded because their egress port went down. */
    Counter faultPacketsDroppedOut;
    /** Port up/down transitions applied to this switch. */
    Counter portTransitions;
};

/**
 * The switch model. Implements TokenEndpoint so it plugs into the token
 * fabric exactly like a server blade does.
 *
 * Extensibility (paper: "a user can easily plug in their own switching
 * algorithm or their own link-layer protocol parsing code in C++ to
 * model new switch designs"): subclasses override route() to change
 * the forwarding decision and insertInQueue() to change the output
 * queueing discipline. priority_switch.hh is a worked example.
 */
class Switch : public TokenEndpoint
{
  public:
    explicit Switch(SwitchConfig config);

    // TokenEndpoint interface
    uint32_t numPorts() const override { return cfg.ports; }
    std::string name() const override { return cfg.name; }
    void advance(Cycles window_start, Cycles window,
                 const std::vector<const TokenBatch *> &in,
                 std::vector<TokenBatch> &out) override;

    // Sliced advance: serial ingress/switching prologue, one egress
    // slice per slicePorts-sized output-port group, per-slice stat
    // scratch folded on the driving thread. The sliced and monolithic
    // paths produce bit-identical tokens and stats (tests/switchmodel).
    uint32_t advanceSliceCount() const override { return sliceCount_; }
    void advanceBegin(Cycles window_start, Cycles window,
                      const std::vector<const TokenBatch *> &in,
                      std::vector<TokenBatch> &out) override;
    void advanceSlice(uint32_t slice, Cycles window_start, Cycles window,
                      const std::vector<const TokenBatch *> &in,
                      std::vector<TokenBatch> &out) override;
    void advanceMerge(Cycles window_start, Cycles window,
                      std::vector<TokenBatch> &out) override;

    /** Install a static MAC table entry: frames for @p mac exit @p port. */
    void addMacEntry(MacAddr mac, uint32_t port);

    /** Look up the output port for @p mac (nullopt -> flood). */
    std::optional<uint32_t> lookupMac(MacAddr mac) const;

    /**
     * Take a port down (or bring it back up) — the fault-injection
     * entry point for modeling a dead cable / dead switch port. While
     * down, flits arriving at the port are discarded (any partial frame
     * is dropped), queued egress packets for the port are discarded,
     * and nothing is emitted onto the link, so the far endpoint simply
     * sees empty tokens and the cluster stays cycle-exact.
     */
    void setPortDown(uint32_t port, bool down);

    /** True when @p port is administratively up. */
    bool portUp(uint32_t port) const;

    const SwitchStats &stats() const { return stats_; }
    const SwitchConfig &config() const { return cfg; }

    /** Register every SwitchStats counter under @p prefix. */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Bytes forwarded out of all ports since the last call; used by the
     * bandwidth-over-time experiments (Figure 6).
     */
    uint64_t takeBytesOutDelta();

    /**
     * Serialize the full inter-round state: MAC table, port admin
     * state, per-port partial frames, the pending priority queue,
     * every output port (queue, active packet, link cursor), sequence
     * counter, and counters. sliceScratch is intra-round scratch and
     * is excluded — snapshots happen at round barriers where it is
     * clear.
     */
    void snapshotSave(Serializer &s) const;
    void snapshotRestore(Deserializer &d, SnapshotErrors &err);

  protected:
    /** A packet waiting in an output port queue. */
    struct QueuedPacket
    {
        EthFrame frame;
        Cycles release = 0;  //!< earliest cycle the first token may leave
        uint64_t seq = 0;    //!< global arrival order for deterministic ties
    };

    struct OutputPort
    {
        std::deque<QueuedPacket> queue;
        /** Packet currently being serialized onto the link, if any. */
        std::optional<QueuedPacket> active;
        /** Byte position within the active packet. */
        size_t activePos = 0;
        /** Next cycle this port's link is free (one token per cycle). */
        Cycles cursor = 0;
    };

    /**
     * Forwarding decision: fill @p out_ports with the ports @p frame
     * leaves through. Default: static MAC table, flooding broadcast
     * and unknown unicast.
     */
    virtual void route(const EthFrame &frame,
                       std::vector<uint32_t> &out_ports) const;

    /**
     * Output queueing discipline: place @p packet into @p port's
     * queue. Default: FIFO in timestamp order (packets arrive from a
     * timestamp-sorted priority queue, so push_back preserves it).
     */
    virtual void insertInQueue(OutputPort &port, QueuedPacket &&packet);

  private:
    /**
     * Per-slice egress counter deltas. Concurrent egress slices may not
     * touch the shared SwitchStats, so each accumulates here and the
     * driving thread folds them in slice order (advanceMerge). Sums are
     * grouping-independent, so any slicing yields identical stats.
     * Padded so concurrent slices don't false-share a cache line.
     */
    struct alignas(64) EgressScratch
    {
        uint64_t packetsOut = 0;
        uint64_t bytesOut = 0;
        uint64_t packetsDropped = 0;
        uint64_t faultPacketsDroppedOut = 0;

        void
        clear()
        {
            packetsOut = bytesOut = 0;
            packetsDropped = faultPacketsDroppedOut = 0;
        }
    };

    void ingress(Cycles window_start,
                 const std::vector<const TokenBatch *> &in);
    void switchingStep();
    void egress(Cycles window_start, Cycles window,
                std::vector<TokenBatch> &out);
    /** Serialize one port's queue into its output batch; counter
     *  deltas go to @p scratch, not the shared stats. */
    void egressPort(uint32_t port, Cycles window_start, Cycles window_end,
                    TokenBatch &out, EgressScratch &scratch);
    void foldScratch(const EgressScratch &scratch);

    void enqueueOutput(uint32_t port, const EthFrame &frame,
                       Cycles release, uint64_t seq);

    SwitchConfig cfg;
    SwitchStats stats_;
    std::map<uint64_t, uint32_t> macTable;
    std::vector<bool> portDown_; //!< administratively-down ports

    std::vector<FrameAssembler> assemblers;      //!< per input port
    /** Packets completed at ingress this round, pending the switching
     *  step; ordered by (timestamp, seq) in a priority queue. */
    struct PendingCmp
    {
        bool
        operator()(const QueuedPacket &a, const QueuedPacket &b) const
        {
            if (a.release != b.release)
                return a.release > b.release;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<QueuedPacket, std::vector<QueuedPacket>,
                        PendingCmp> pending;
    std::vector<OutputPort> outputs;
    uint64_t nextSeq = 0;
    uint64_t bytesOutSinceQuery = 0;
    uint32_t sliceCount_ = 1;
    std::vector<EgressScratch> sliceScratch; //!< one per egress slice
};

} // namespace firesim

#endif // FIRESIM_SWITCH_SWITCH_HH
