#include "telemetry/aggregate.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/logging.hh"
#include "base/varint.hh"

namespace firesim
{

namespace
{

// Value tags: integral values (the overwhelming majority — counters)
// ride a zigzag varint; everything else ships raw IEEE-754 bits.
constexpr uint8_t kValInt = 0;
constexpr uint8_t kValDouble = 1;

bool
isIntegral(double v)
{
    return std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15;
}

void
putDoubleBits(std::string &out, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

bool
tryGetDoubleBits(const std::string &in, size_t &pos, double &v)
{
    if (pos + 8 > in.size())
        return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<uint64_t>(
                    static_cast<uint8_t>(in[pos + i]))
                << (8 * i);
    pos += 8;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
tryGetBytes(const std::string &in, size_t &pos, size_t len,
            std::string &out)
{
    if (pos + len > in.size())
        return false;
    out.assign(in, pos, len);
    pos += len;
    return true;
}

size_t
commonPrefix(const std::string &a, const std::string &b)
{
    size_t n = std::min(a.size(), b.size());
    size_t i = 0;
    while (i < n && a[i] == b[i])
        ++i;
    return i;
}

} // namespace

std::string
encodeRankTelemetry(const RankTelemetry &rt)
{
    std::string out;
    putVarint(out, kRankTelemetryVersion);
    putVarint(out, rt.rank);
    putVarint(out, rt.round);
    putVarint(out, rt.cycle);

    putVarint(out, rt.stats.values.size());
    const std::string *prev = nullptr;
    for (const auto &[name, value] : rt.stats.values) {
        // Registry order is sorted, so consecutive names share long
        // dotted prefixes; ship (shared, suffix) instead of the name.
        size_t shared = prev ? commonPrefix(*prev, name) : 0;
        putVarint(out, shared);
        putVarint(out, name.size() - shared);
        out.append(name, shared, name.size() - shared);
        prev = &name;
        if (isIntegral(value)) {
            out.push_back(static_cast<char>(kValInt));
            putVarint(out, zigzag(static_cast<int64_t>(value)));
        } else {
            out.push_back(static_cast<char>(kValDouble));
            putDoubleBits(out, value);
        }
    }

    putVarint(out, rt.phases.size());
    for (const auto &ph : rt.phases) {
        putVarint(out, ph.name.size());
        out.append(ph.name);
        putVarint(out, ph.startCycle);
        putVarint(out, ph.targetCycles);
        putDoubleBits(out, ph.hostSeconds);
    }
    return out;
}

bool
decodeRankTelemetry(const std::string &bytes, RankTelemetry &out)
{
    size_t p = 0;
    uint64_t version, rank, round, cycle, nstats;
    if (!tryGetVarint(bytes, p, version) ||
        version != kRankTelemetryVersion)
        return false;
    if (!tryGetVarint(bytes, p, rank) ||
        !tryGetVarint(bytes, p, round) ||
        !tryGetVarint(bytes, p, cycle) ||
        !tryGetVarint(bytes, p, nstats))
        return false;
    out = RankTelemetry{};
    out.rank = static_cast<uint32_t>(rank);
    out.round = round;
    out.cycle = cycle;
    out.stats.at = cycle;
    // nstats is peer-controlled: clamp the reserve to what the payload
    // could actually hold (a stat is >= 4 bytes on the wire) so a
    // hostile count cannot allocate unbounded memory up front. The
    // loop below still validates every element individually.
    out.stats.values.reserve(
        std::min<uint64_t>(nstats, (bytes.size() - p) / 4));

    std::string name;
    for (uint64_t i = 0; i < nstats; ++i) {
        uint64_t shared, suffix_len;
        if (!tryGetVarint(bytes, p, shared) ||
            !tryGetVarint(bytes, p, suffix_len))
            return false;
        if (shared > name.size())
            return false;
        std::string suffix;
        if (!tryGetBytes(bytes, p, suffix_len, suffix))
            return false;
        name.resize(shared);
        name += suffix;
        if (p >= bytes.size())
            return false;
        uint8_t tag = static_cast<uint8_t>(bytes[p++]);
        double value;
        if (tag == kValInt) {
            uint64_t zz;
            if (!tryGetVarint(bytes, p, zz))
                return false;
            value = static_cast<double>(unzigzag(zz));
        } else if (tag == kValDouble) {
            if (!tryGetDoubleBits(bytes, p, value))
                return false;
        } else {
            return false;
        }
        out.stats.values.emplace_back(name, value);
    }

    uint64_t nphases;
    if (!tryGetVarint(bytes, p, nphases))
        return false;
    // Same clamp as above: a phase entry is >= 11 bytes (name length,
    // two varints, 8-byte double), so the count cannot exceed that.
    out.phases.reserve(
        std::min<uint64_t>(nphases, (bytes.size() - p) / 11));
    for (uint64_t i = 0; i < nphases; ++i) {
        uint64_t name_len, start, cycles;
        SimRateTelemetry::Phase ph;
        if (!tryGetVarint(bytes, p, name_len) ||
            !tryGetBytes(bytes, p, name_len, ph.name) ||
            !tryGetVarint(bytes, p, start) ||
            !tryGetVarint(bytes, p, cycles) ||
            !tryGetDoubleBits(bytes, p, ph.hostSeconds))
            return false;
        ph.startCycle = start;
        ph.targetCycles = cycles;
        out.phases.push_back(std::move(ph));
    }
    return p == bytes.size();
}

void
StatAggregator::accept(RankTelemetry rt)
{
    uint32_t rank = rt.rank;
    byRank[rank] = std::move(rt);
}

void
StatAggregator::acceptEncoded(uint32_t rank, const std::string &payload)
{
    RankTelemetry rt;
    if (!decodeRankTelemetry(payload, rt)) {
        warn("aggregate: malformed telemetry payload from rank %u "
             "(%zu bytes); dropped",
             rank, payload.size());
        return;
    }
    if (rt.rank != rank) {
        warn("aggregate: rank %u payload claims rank %u; dropped", rank,
             rt.rank);
        return;
    }
    accept(std::move(rt));
}

const RankTelemetry &
StatAggregator::rankTelemetry(uint32_t rank) const
{
    auto it = byRank.find(rank);
    if (it == byRank.end())
        panic("aggregate: no telemetry for rank %u", rank);
    return it->second;
}

Cycles
StatAggregator::maxCycle() const
{
    Cycles max = 0;
    for (const auto &[rank, rt] : byRank)
        max = std::max(max, rt.cycle);
    return max;
}

std::string
StatAggregator::mergedJson() const
{
    std::string out = csprintf("{\"cycle\": %llu, \"stats\": {",
                               (unsigned long long)maxCycle());
    bool first = true;
    for (const auto &[rank, rt] : byRank) {
        for (const auto &[name, value] : rt.stats.values) {
            if (!first)
                out += ", ";
            first = false;
            out += csprintf(
                "\"rank%u.%s\": %s", rank, jsonEscape(name).c_str(),
                StatRegistry::formatValue(value).c_str());
        }
    }
    out += "}}";
    return out;
}

std::string
StatAggregator::mergedCsv() const
{
    std::string out = csprintf("# cycle %llu\nstat,value\n",
                               (unsigned long long)maxCycle());
    for (const auto &[rank, rt] : byRank) {
        for (const auto &[name, value] : rt.stats.values) {
            // The rank prefix cannot need quoting, but the stat name
            // can — one comma in a peer's stat name must not shift
            // every later column. Same helper as StatRegistry::dumpCsv.
            out += csprintf(
                "%s,%s\n",
                StatRegistry::csvField(csprintf("rank%u.%s", rank,
                                                name.c_str())).c_str(),
                StatRegistry::formatValue(value).c_str());
        }
    }
    return out;
}

std::string
StatAggregator::mergedTraceJson() const
{
    // Chrome trace with per-rank process lanes on the *simulated*
    // clock: one trace-cycle == one trace-microsecond, so lanes from
    // different hosts line up exactly (host wall time cannot).
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const auto &[rank, rt] : byRank) {
        out += csprintf(
            "%s\n  {\"name\": \"process_name\", \"ph\": \"M\", "
            "\"pid\": %u, \"args\": {\"name\": \"rank %u\"}}",
            first ? "" : ",", rank + 1, rank);
        first = false;
        for (const auto &ph : rt.phases) {
            out += csprintf(
                ",\n  {\"name\": \"%s\", \"cat\": \"simrate\", "
                "\"ph\": \"X\", \"pid\": %u, \"tid\": 1, "
                "\"ts\": %llu, \"dur\": %llu}",
                jsonEscape(ph.name).c_str(), rank + 1,
                (unsigned long long)ph.startCycle,
                (unsigned long long)ph.targetCycles);
        }
    }
    out += "\n]}";
    return out;
}

} // namespace firesim
