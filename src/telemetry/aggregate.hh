/**
 * @file
 * Cross-shard telemetry aggregation (paper Section III-C: the
 * simulation manager's single pane of glass over the whole cluster).
 *
 * Each non-zero rank periodically encodes a RankTelemetry — its full
 * StatRegistry snapshot plus completed SimRateTelemetry phases — into
 * a compact varint payload that the shard transport piggybacks on the
 * RoundDone barrier (net/remote/wire FrameType::Stats). Rank 0 feeds
 * every payload (and its own local snapshot) into a StatAggregator,
 * which keeps the latest view per rank and renders:
 *
 *  - mergedJson()/mergedCsv(): one global stat tree with per-rank
 *    `rankK.` name prefixes, byte-equivalent to the single-process
 *    dump modulo those prefixes and host-timing keys (pinned by
 *    tests/obs),
 *  - mergedTraceJson(): one Chrome trace with a process lane per rank,
 *    aligned on the *simulated* cycle clock (ts = phase start cycle),
 *    so cross-shard skew is visible against a common time base.
 *
 * The encoding is host-observability-only: it never feeds back into
 * simulation state, so shipping it cannot perturb determinism.
 */

#ifndef FIRESIM_TELEMETRY_AGGREGATE_HH
#define FIRESIM_TELEMETRY_AGGREGATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/units.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_event.hh"

namespace firesim
{

/** Bumped when the RankTelemetry payload layout changes. */
constexpr uint32_t kRankTelemetryVersion = 1;

/** One rank's point-in-time telemetry, as shipped to rank 0. */
struct RankTelemetry
{
    uint32_t rank = 0;
    uint64_t round = 0;
    Cycles cycle = 0;
    StatSnapshot stats;
    std::vector<SimRateTelemetry::Phase> phases;
};

/**
 * Varint encoding: version, rank, round, cycle, then the stats with
 * common-prefix name compression (dotted stat trees share long
 * prefixes) and integral values as zigzag varints, then the phases.
 */
std::string encodeRankTelemetry(const RankTelemetry &rt);

/** Strict decode; false (with @p out unspecified) on malformed or
 *  truncated bytes — network payloads never panic. */
bool decodeRankTelemetry(const std::string &bytes, RankTelemetry &out);

/**
 * Rank 0's merge point. accept() keeps the newest telemetry per rank
 * (rank 0 inserts its own local snapshot the same way); the merged
 * renderings walk ranks in ascending order.
 */
class StatAggregator
{
  public:
    void accept(RankTelemetry rt);

    /** Decode + accept a wire payload; warns and drops on malformed
     *  bytes (a sick peer must not kill the aggregator). */
    void acceptEncoded(uint32_t rank, const std::string &payload);

    size_t rankCount() const { return byRank.size(); }
    bool hasRank(uint32_t rank) const { return byRank.count(rank) != 0; }
    const RankTelemetry &rankTelemetry(uint32_t rank) const;

    /** Highest cycle any rank has reported (the merged dump stamp). */
    Cycles maxCycle() const;

    /** {"cycle": N, "stats": {"rank0.a.b": v, ...}} — same shape as
     *  StatRegistry::dumpJson with rank-prefixed names. */
    std::string mergedJson() const;

    /** CSV matching StatRegistry::dumpCsv, rank-prefixed. */
    std::string mergedCsv() const;

    /** Chrome trace: pid = rank + 1, one lane per rank, ts/dur in
     *  simulated cycles (reported as trace microseconds). */
    std::string mergedTraceJson() const;

  private:
    std::map<uint32_t, RankTelemetry> byRank;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_AGGREGATE_HH
