#include "telemetry/auto_counter.hh"

#include "base/logging.hh"
#include "snapshot/serial.hh"

namespace firesim
{

AutoCounterSampler::AutoCounterSampler(const StatRegistry &registry,
                                       Cycles period)
    : reg(registry), per(period), nextAt(period)
{
    if (period == 0)
        fatal("AutoCounter sample period must be nonzero");
}

void
AutoCounterSampler::attachTo(TokenFabric &fabric)
{
    quantum = fabric.quantum();
    FS_ASSERT(quantum > 0, "attachTo() before fabric finalize()");
    fabric.addObserver(this);
}

void
AutoCounterSampler::sampleNow(Cycles at)
{
    if (cols.empty()) {
        cols = reg.names();
    } else if (cols.size() != reg.size()) {
        panic("stat registry grew from %zu to %zu stats after the "
              "AutoCounter series started; register everything before "
              "the first sample",
              cols.size(), reg.size());
    }
    StatSnapshot snap = reg.snapshot(at);
    Sample s;
    s.at = at;
    s.values.reserve(snap.values.size());
    for (const auto &kv : snap.values)
        s.values.push_back(kv.second);
    samples.push_back(std::move(s));
    debug("autocounter: sampled %zu stats at cycle %llu", cols.size(),
          (unsigned long long)at);
}

void
AutoCounterSampler::onRoundEnd(Cycles round_start, uint64_t round)
{
    (void)round;
    Cycles round_end = round_start + quantum;
    while (nextAt <= round_end) {
        sampleNow(nextAt);
        nextAt += per;
    }
}

std::vector<double>
AutoCounterSampler::deltaSeries(const std::string &name) const
{
    size_t col = cols.size();
    for (size_t i = 0; i < cols.size(); ++i)
        if (cols[i] == name)
            col = i;
    if (col == cols.size())
        panic("AutoCounter series has no column '%s'", name.c_str());
    std::vector<double> out;
    out.reserve(samples.size());
    double prev = 0.0;
    for (const Sample &s : samples) {
        out.push_back(s.values[col] - prev);
        prev = s.values[col];
    }
    return out;
}

std::string
AutoCounterSampler::csv() const
{
    std::string out = "cycle";
    for (const std::string &c : cols)
        out += "," + c;
    out += "\n";
    for (const Sample &s : samples) {
        out += csprintf("%llu", (unsigned long long)s.at);
        for (double v : s.values)
            out += "," + StatRegistry::formatValue(v);
        out += "\n";
    }
    return out;
}

std::string
AutoCounterSampler::json() const
{
    std::string out =
        csprintf("{\"period\": %llu, \"columns\": [",
                 (unsigned long long)per);
    for (size_t i = 0; i < cols.size(); ++i)
        out += csprintf("%s\"%s\"", i ? ", " : "", cols[i].c_str());
    out += "], \"samples\": [";
    for (size_t i = 0; i < samples.size(); ++i) {
        out += csprintf("%s[%llu", i ? ", " : "",
                        (unsigned long long)samples[i].at);
        for (double v : samples[i].values)
            out += ", " + StatRegistry::formatValue(v);
        out += "]";
    }
    out += "]}";
    return out;
}

// ---- Checkpoint support ---------------------------------------------

void
AutoCounterSampler::snapshotSave(Serializer &s) const
{
    s.putU(per);
    s.putU(quantum);
    s.putU(nextAt);
    s.putU(cols.size());
    for (const std::string &c : cols)
        s.putStr(c);
    s.putU(samples.size());
    for (const Sample &smp : samples) {
        s.putU(smp.at);
        s.putU(smp.values.size());
        for (double v : smp.values)
            s.putD(v);
    }
}

void
AutoCounterSampler::snapshotRestore(Deserializer &d, SnapshotErrors &err)
{
    expectEq(err, "autocounter period", per, d.getU());
    expectEq(err, "autocounter quantum", quantum, d.getU());
    if (!err.ok())
        return;
    Cycles next = d.getU();
    std::vector<std::string> newCols;
    uint64_t n = d.getU();
    for (uint64_t i = 0; i < n && d.ok(); ++i)
        newCols.push_back(d.getStr());
    std::vector<Sample> newSamples;
    n = d.getU();
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
        Sample smp;
        smp.at = d.getU();
        uint64_t vals = d.getU();
        if (vals != newCols.size() && !(newCols.empty() && vals == 0)) {
            err.add(csprintf("autocounter sample %llu has %llu values "
                             "for %zu columns", (unsigned long long)i,
                             (unsigned long long)vals, newCols.size()));
            return;
        }
        for (uint64_t v = 0; v < vals && d.ok(); ++v)
            smp.values.push_back(d.getD());
        newSamples.push_back(std::move(smp));
    }
    if (!d.ok()) {
        err.add("autocounter: " + d.error());
        return;
    }
    nextAt = next;
    cols = std::move(newCols);
    samples = std::move(newSamples);
}

} // namespace firesim
