/**
 * @file
 * AutoCounter-style periodic stat sampling (the FireSim follow-on
 * tooling's out-of-band performance-counter capture).
 *
 * The sampler attaches to the token fabric as an observer and, every N
 * target cycles, snapshots the whole StatRegistry into an in-memory
 * time series. Because the read happens between fabric rounds — on the
 * host side of the decoupling boundary — sampling is invisible to the
 * target: no target cycle is perturbed, matching the paper's token-
 * level out-of-band instrumentation discipline.
 *
 * Sample stamps are exact multiples of the period even when the period
 * is not a multiple of the round quantum: a sample due at cycle k*N is
 * taken at the end of the first round that covers it and stamped k*N.
 */

#ifndef FIRESIM_TELEMETRY_AUTO_COUNTER_HH
#define FIRESIM_TELEMETRY_AUTO_COUNTER_HH

#include <string>
#include <vector>

#include "net/fabric.hh"
#include "telemetry/stat_registry.hh"

namespace firesim
{

class Serializer;
class Deserializer;
struct SnapshotErrors;

class AutoCounterSampler : public FabricObserver
{
  public:
    /**
     * @param registry stats to sample (must outlive the sampler)
     * @param period sampling period in target cycles (nonzero)
     */
    AutoCounterSampler(const StatRegistry &registry, Cycles period);

    /** Register with @p fabric and learn its round quantum. */
    void attachTo(TokenFabric &fabric);

    /** FabricObserver: sample at every period boundary the round crossed. */
    void onRoundEnd(Cycles round_start, uint64_t round) override;

    /** Take an immediate sample stamped @p at (checkpoint support). */
    void sampleNow(Cycles at);

    Cycles period() const { return per; }

    /** Column names, fixed at the first sample. */
    const std::vector<std::string> &columns() const { return cols; }

    struct Sample
    {
        Cycles at = 0;
        std::vector<double> values; //!< one per column
    };

    const std::vector<Sample> &series() const { return samples; }

    /**
     * Per-sample delta of column @p name against the previous sample —
     * the series the bandwidth/drop-rate curves are drawn from.
     * The first entry is the first sample's absolute value.
     */
    std::vector<double> deltaSeries(const std::string &name) const;

    /** CSV: "cycle,<col>,<col>,..." then one row per sample. */
    std::string csv() const;

    /** JSON: {"period": N, "columns": [...], "samples": [[at, v...]]}. */
    std::string json() const;

    /**
     * Serialize the accumulated series (columns + samples) and the
     * next-sample cursor, so csv()/json() from a restored run are
     * byte-identical to an unbroken run's.
     */
    void snapshotSave(Serializer &s) const;
    void snapshotRestore(Deserializer &d, SnapshotErrors &err);

  private:
    const StatRegistry &reg;
    Cycles per;
    Cycles quantum = 0; //!< learned from the fabric at attach
    Cycles nextAt;      //!< next sample's due cycle
    std::vector<std::string> cols;
    std::vector<Sample> samples;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_AUTO_COUNTER_HH
