#include "telemetry/flight_recorder.hh"

#include <csignal>
#include <cstring>

#include "base/logging.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/stat_registry.hh"

namespace firesim
{

namespace
{

// Slot state word: 0 = empty, odd = a writer or reader holds the
// slot, even nonzero = seq*2+2 of the event it contains.
constexpr uint64_t kLockBit = 1;

/** Acquire @p state, returning the previous (even) value; gives up
 *  after @p max_spins and returns false (signal-handler safety: a
 *  dump must not deadlock on a lock its own thread holds). */
bool
lockSlot(std::atomic<uint64_t> &state, uint64_t &prev, int max_spins)
{
    for (int i = 0; i < max_spins; ++i) {
        uint64_t v = state.load(std::memory_order_relaxed);
        if (v & kLockBit)
            continue;
        if (state.compare_exchange_weak(v, v | kLockBit,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
            prev = v;
            return true;
        }
    }
    return false;
}

void
unlockSlot(std::atomic<uint64_t> &state, uint64_t value)
{
    state.store(value, std::memory_order_release);
}

// The one recorder allowed to own process signal handlers.
std::atomic<FlightRecorder *> g_signalRecorder{nullptr};

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL,
                                 SIGABRT};
constexpr size_t kNumFatalSignals =
    sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);

struct sigaction g_oldActions[kNumFatalSignals];

void
fatalSignalHandler(int signo)
{
    FlightRecorder *fr =
        g_signalRecorder.exchange(nullptr, std::memory_order_acq_rel);
    if (fr)
        fr->dump(csprintf("fatal signal %d (%s)", signo,
                          strsignal(signo)));
    // Restore default disposition and re-raise so the process still
    // dies with the original signal (core dumps, death tests, and
    // exit codes all stay truthful).
    signal(signo, SIG_DFL);
    raise(signo);
}

} // namespace

const char *
FlightRecorder::kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::RoundBarrier: return "round-barrier";
      case EventKind::FaultInjected: return "fault-injected";
      case EventKind::HealthEvent: return "health-event";
      case EventKind::PeerLoss: return "peer-loss";
      case EventKind::PeerMessage: return "peer-message";
      case EventKind::CheckpointWrite: return "checkpoint-write";
      case EventKind::RestoreDiverged: return "restore-diverged";
      case EventKind::Heartbeat: return "heartbeat";
      case EventKind::Straggler: return "straggler";
      case EventKind::Note: return "note";
      case EventKind::kCount: break;
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : cfg(std::move(config)),
      slots(cfg.depth ? cfg.depth : 1),
      epoch(std::chrono::steady_clock::now())
{
    if (cfg.depth == 0)
        fatal("flight recorder depth must be nonzero");
    if (cfg.path.empty())
        cfg.path = "flight-recorder.jsonl";
    if (cfg.installSignalHandler)
        installSignals();
}

FlightRecorder::~FlightRecorder()
{
    uninstallSignals();
}

void
FlightRecorder::installSignals()
{
    FlightRecorder *expected = nullptr;
    if (!g_signalRecorder.compare_exchange_strong(
            expected, this, std::memory_order_acq_rel)) {
        warn("flight recorder: signal handlers already owned by "
             "another recorder; this one dumps only on request");
        return;
    }
    signalsInstalled = true;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fatalSignalHandler;
    sigemptyset(&sa.sa_mask);
    for (size_t i = 0; i < kNumFatalSignals; ++i)
        sigaction(kFatalSignals[i], &sa, &g_oldActions[i]);
}

void
FlightRecorder::uninstallSignals()
{
    if (!signalsInstalled)
        return;
    signalsInstalled = false;
    FlightRecorder *expected = this;
    g_signalRecorder.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
    for (size_t i = 0; i < kNumFatalSignals; ++i)
        sigaction(kFatalSignals[i], &g_oldActions[i], nullptr);
}

void
FlightRecorder::record(EventKind kind, uint64_t round, Cycles cycle,
                       const char *detail, uint64_t a, uint64_t b)
{
    uint64_t seq = next.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots[seq % slots.size()];
    uint64_t prev;
    // Unbounded in practice: contention requires another writer to be
    // mid-copy on the *same* slot, i.e. a full ring wraparound racing
    // one bounded POD copy.
    if (!lockSlot(slot.state, prev, 1 << 20))
        return;
    slot.seq = seq;
    slot.hostNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
    slot.round = round;
    slot.cycle = cycle;
    slot.a = a;
    slot.b = b;
    slot.kind = kind;
    std::strncpy(slot.detail, detail ? detail : "",
                 sizeof(slot.detail) - 1);
    slot.detail[sizeof(slot.detail) - 1] = '\0';
    unlockSlot(slot.state, seq * 2 + 2);
}

std::string
FlightRecorder::renderJsonl(const std::string &reason) const
{
    std::string out;
    uint64_t total = next.load(std::memory_order_acquire);
    uint64_t first = total > slots.size() ? total - slots.size() : 0;
    uint64_t emitted = 0;
    for (uint64_t seq = first; seq < total; ++seq) {
        // const_cast: locking the slot mutates only the state word;
        // renderJsonl is logically const (it changes no event).
        Slot &slot =
            const_cast<Slot &>(slots[seq % slots.size()]);
        uint64_t prev;
        if (!lockSlot(slot.state, prev, 10000))
            continue; // writer stuck mid-copy; drop this slot
        Slot copy;
        bool valid = prev == seq * 2 + 2;
        if (valid) {
            copy.seq = slot.seq;
            copy.hostNs = slot.hostNs;
            copy.round = slot.round;
            copy.cycle = slot.cycle;
            copy.a = slot.a;
            copy.b = slot.b;
            copy.kind = slot.kind;
            std::memcpy(copy.detail, slot.detail, sizeof(copy.detail));
        }
        unlockSlot(slot.state, prev);
        if (!valid)
            continue; // lapped by a concurrent writer
        out += csprintf(
            "{\"seq\": %llu, \"host_ns\": %llu, \"kind\": \"%s\", "
            "\"round\": %llu, \"cycle\": %llu, \"a\": %llu, "
            "\"b\": %llu, \"detail\": \"%s\"}\n",
            (unsigned long long)copy.seq,
            (unsigned long long)copy.hostNs, kindName(copy.kind),
            (unsigned long long)copy.round,
            (unsigned long long)copy.cycle, (unsigned long long)copy.a,
            (unsigned long long)copy.b,
            jsonEscape(copy.detail).c_str());
        ++emitted;
    }
    out += csprintf("{\"flight_recorder_end\": {\"reason\": \"%s\", "
                    "\"recorded\": %llu, \"emitted\": %llu}}\n",
                    jsonEscape(reason).c_str(),
                    (unsigned long long)total,
                    (unsigned long long)emitted);
    return out;
}

bool
FlightRecorder::dump(const std::string &reason)
{
    std::string err =
        atomicWriteFile(cfg.path, renderJsonl(reason), "flight recorder");
    if (!err.empty()) {
        warn("flight recorder: %s", err.c_str());
        return false;
    }
    inform("flight recorder: postmortem (%s) written to %s",
           reason.c_str(), cfg.path.c_str());
    return true;
}

} // namespace firesim
