/**
 * @file
 * Always-on crash flight recorder: a fixed-size lock-free ring of the
 * last N notable events (round barriers, injected faults, peer
 * messages, checkpoint writes, health transitions), dumped to a
 * postmortem JSONL file when something dies — fatal signal, peer
 * loss, restore divergence — or on explicit request.
 *
 * Design constraints, in order:
 *  - recording must be cheap enough to leave on in production runs:
 *    one atomic fetch_add to claim a slot plus a bounded POD copy, no
 *    global lock, no allocation;
 *  - recording must be thread-safe and TSan-clean: fabric worker
 *    threads and the driving thread can record concurrently. Each
 *    slot carries its own tiny atomic spinlock, so two writers only
 *    ever contend on a wraparound collision of the same slot;
 *  - dumping must work from the ugliest contexts (a SIGSEGV handler):
 *    the ring is preallocated POD, and the write path reuses the
 *    snapshot layer's atomic tmp+fsync+rename helper so a crash
 *    mid-dump cannot tear an existing postmortem.
 *
 * The recorder observes; it never feeds back into simulation state,
 * so enabling it cannot perturb determinism.
 */

#ifndef FIRESIM_TELEMETRY_FLIGHT_RECORDER_HH
#define FIRESIM_TELEMETRY_FLIGHT_RECORDER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hh"

namespace firesim
{

struct FlightRecorderConfig
{
    /** Master switch (off = the Cluster allocates nothing). */
    bool enabled = false;
    /** Ring depth in events; the last `depth` events survive. */
    size_t depth = 256;
    /** Postmortem output path ("" = flight-recorder.jsonl in cwd;
     *  distributed runs get a .rank<N> suffix from the Cluster). */
    std::string path;
    /** Dump automatically on SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT.
     *  One recorder per process may install handlers. */
    bool installSignalHandler = false;
};

class FlightRecorder
{
  public:
    enum class EventKind : uint8_t
    {
        RoundBarrier,    //!< a distributed round barrier completed
        FaultInjected,   //!< FaultInjector applied a fault
        HealthEvent,     //!< HealthMonitor recorded a FaultEvent
        PeerLoss,        //!< a peer shard vanished
        PeerMessage,     //!< notable transport traffic (hello/bye)
        CheckpointWrite, //!< a snapshot hit disk
        RestoreDiverged, //!< snapshot restore failed verification
        Heartbeat,       //!< monitor heartbeat emitted
        Straggler,       //!< straggler detection latched
        Note,            //!< free-form marker
        kCount,
    };

    static const char *kindName(EventKind kind);

    explicit FlightRecorder(FlightRecorderConfig config);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    const FlightRecorderConfig &config() const { return cfg; }

    /**
     * Record one event. @p detail is truncated to the slot's fixed
     * capacity; @p a / @p b are free-form numeric arguments (peer
     * rank, latency, ...). Thread-safe, allocation-free.
     */
    void record(EventKind kind, uint64_t round, Cycles cycle,
                const char *detail = "", uint64_t a = 0, uint64_t b = 0);

    /** Total events ever recorded (ring keeps the last depth()). */
    uint64_t recorded() const
    {
        return next.load(std::memory_order_relaxed);
    }

    size_t depth() const { return slots.size(); }

    /** The ring's surviving events, oldest first, one JSON object per
     *  line; ends with a `{"flight_recorder_end": ...}` trailer. */
    std::string renderJsonl(const std::string &reason) const;

    /**
     * Write renderJsonl() to config().path via the snapshot layer's
     * atomic write. Idempotent per reason (repeated dumps overwrite).
     * Returns false and warns on I/O failure.
     */
    bool dump(const std::string &reason);

  private:
    /** POD slot; `lock` doubles as the published-sequence word:
     *  0 = empty, odd = writer busy, even nonzero = seq*2+2 done. */
    struct Slot
    {
        std::atomic<uint64_t> state{0};
        uint64_t seq = 0;
        uint64_t hostNs = 0;
        uint64_t round = 0;
        uint64_t cycle = 0;
        uint64_t a = 0;
        uint64_t b = 0;
        EventKind kind = EventKind::Note;
        char detail[64] = {};
    };

    void installSignals();
    void uninstallSignals();

    FlightRecorderConfig cfg;
    std::vector<Slot> slots;
    std::atomic<uint64_t> next{0};
    std::chrono::steady_clock::time_point epoch;
    bool signalsInstalled = false;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_FLIGHT_RECORDER_HH
