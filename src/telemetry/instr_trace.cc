#include "telemetry/instr_trace.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "base/varint.hh"
#include "snapshot/serial.hh"

namespace firesim
{

namespace
{

constexpr char kMagic[4] = {'F', 'S', 'I', 'T'}; //!< FireSim Instr Trace
constexpr uint32_t kVersion = 1;

/** Encode ring records [lo, hi) (logical indices from the ring head)
 *  against the given predecessor. The shared body of the serial and
 *  parallel encoders — one definition, so their bytes cannot drift. */
void
encodeRecordRange(const std::vector<TraceRecord> &ring, size_t head,
                  size_t lo, size_t hi, uint64_t prev_pc,
                  uint64_t prev_cycle, std::string &out)
{
    for (size_t i = lo; i < hi; ++i) {
        const TraceRecord &r = ring[(head + i) % ring.size()];
        putVarint(out, zigzag(static_cast<int64_t>(r.pc - prev_pc)));
        putVarint(out, r.cycle - prev_cycle);
        out.push_back(static_cast<char>(r.cls));
        prev_pc = r.pc;
        prev_cycle = r.cycle;
    }
}

/** Below this many records the fork/join overhead of the parallel
 *  encoder outweighs the encode itself. */
constexpr size_t kParallelEncodeMin = 4096;

} // namespace

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "alu";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::Jump: return "jump";
      case OpClass::MulDiv: return "muldiv";
      case OpClass::System: return "system";
      case OpClass::Custom: return "custom";
    }
    return "?";
}

InstructionTrace::InstructionTrace(size_t capacity)
{
    if (capacity == 0)
        fatal("instruction trace ring capacity must be nonzero");
    ring.resize(capacity);
}

std::vector<TraceRecord>
InstructionTrace::drain()
{
    std::vector<TraceRecord> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    head = 0;
    count = 0;
    debug("instr-trace: drained %zu records (%llu dropped so far)",
          out.size(), (unsigned long long)overwritten);
    return out;
}

std::string
InstructionTrace::encodeCompressed() const
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putVarint(out, kVersion);
    putVarint(out, count);
    encodeRecordRange(ring, head, 0, count, 0, 0, out);
    return out;
}

std::string
InstructionTrace::encodeCompressed(ThreadPool *pool) const
{
    if (!pool || pool->width() <= 1 || count < kParallelEncodeMin)
        return encodeCompressed();

    // One chunk per pool thread; chunk c's delta base is record
    // lo - 1, read raw from the ring, so concatenating the chunks
    // reproduces the serial byte stream exactly.
    size_t chunks = pool->width();
    size_t per = (count + chunks - 1) / chunks;
    std::vector<std::string> parts(chunks);
    // Worst case is ~2x varint growth at a chunk boundary; 6 bytes per
    // record is the typical loopy-code footprint, so this mostly
    // avoids regrowth without overcommitting.
    const size_t reserve_per_record = 6;
    pool->parallelFor(chunks, [&](size_t c) {
        size_t lo = c * per;
        size_t hi = std::min(count, lo + per);
        if (lo >= hi)
            return;
        uint64_t prev_pc = 0;
        uint64_t prev_cycle = 0;
        if (lo > 0) {
            const TraceRecord &p = ring[(head + lo - 1) % ring.size()];
            prev_pc = p.pc;
            prev_cycle = p.cycle;
        }
        parts[c].reserve((hi - lo) * reserve_per_record);
        encodeRecordRange(ring, head, lo, hi, prev_pc, prev_cycle,
                          parts[c]);
    });

    std::string out;
    size_t total = sizeof(kMagic) + 16;
    for (const std::string &part : parts)
        total += part.size();
    out.reserve(total);
    out.append(kMagic, sizeof(kMagic));
    putVarint(out, kVersion);
    putVarint(out, count);
    for (const std::string &part : parts)
        out += part;
    return out;
}

std::vector<TraceRecord>
InstructionTrace::decodeCompressed(const std::string &bytes)
{
    if (bytes.size() < sizeof(kMagic) ||
        bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
        panic("instruction trace stream has a bad magic header");
    size_t pos = sizeof(kMagic);
    uint64_t version = getVarint(bytes, pos);
    if (version != kVersion)
        panic("instruction trace version %llu unsupported",
              (unsigned long long)version);
    uint64_t n = getVarint(bytes, pos);
    std::vector<TraceRecord> out;
    out.reserve(n);
    uint64_t pc = 0;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < n; ++i) {
        pc += static_cast<uint64_t>(unzigzag(getVarint(bytes, pos)));
        cycle += getVarint(bytes, pos);
        if (pos >= bytes.size())
            panic("truncated instruction trace stream");
        uint8_t cls = static_cast<uint8_t>(bytes[pos++]);
        if (cls > static_cast<uint8_t>(OpClass::Custom))
            panic("corrupt opcode class %u in trace stream", cls);
        out.push_back(
            TraceRecord{pc, cycle, static_cast<OpClass>(cls)});
    }
    return out;
}

bool
InstructionTrace::writeCompressed(const std::string &path,
                                  ThreadPool *pool) const
{
    std::string bytes = encodeCompressed(pool);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("cannot open '%s' for the instruction trace",
             path.c_str());
        return false;
    }
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size()) {
        warn("short write of instruction trace to '%s'", path.c_str());
        return false;
    }
    return true;
}

std::vector<TraceRecord>
InstructionTrace::readCompressed(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        panic("cannot open instruction trace '%s'", path.c_str());
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    return decodeCompressed(bytes);
}

void
HotnessProfile::add(const TraceRecord &rec)
{
    Cell &cell = cells[rec.pc];
    ++cell.commits;
    cell.cls = rec.cls;
    ++total_;
}

void
HotnessProfile::add(const std::vector<TraceRecord> &recs)
{
    for (const TraceRecord &r : recs)
        add(r);
}

std::vector<HotnessProfile::Entry>
HotnessProfile::top(size_t n) const
{
    std::vector<Entry> all;
    all.reserve(cells.size());
    for (const auto &kv : cells)
        all.push_back(Entry{kv.first, kv.second.commits, kv.second.cls});
    std::stable_sort(all.begin(), all.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.commits > b.commits;
                     });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::string
HotnessProfile::report(size_t n) const
{
    std::string out = csprintf(
        "Top-%zu hot PCs (%llu commits profiled)\n", n,
        (unsigned long long)total_);
    for (const Entry &e : top(n)) {
        double share =
            total_ ? 100.0 * static_cast<double>(e.commits) /
                         static_cast<double>(total_)
                   : 0.0;
        out += csprintf("  %#12llx  %10llu commits  %5.1f%%  %s\n",
                        (unsigned long long)e.pc,
                        (unsigned long long)e.commits, share,
                        opClassName(e.cls));
    }
    return out;
}

// ---- Checkpoint support ---------------------------------------------

void
InstructionTrace::snapshotSave(Serializer &s) const
{
    s.putU(ring.size());
    s.putU(committed_);
    s.putU(overwritten);
    s.putU(count);
    for (size_t i = 0; i < count; ++i) {
        const TraceRecord &r = ring[(head + i) % ring.size()];
        s.putU(r.pc);
        s.putU(r.cycle);
        s.putU(static_cast<uint64_t>(r.cls));
    }
}

void
InstructionTrace::snapshotRestore(Deserializer &d, SnapshotErrors &err)
{
    expectEq(err, "trace capacity", (uint64_t)ring.size(), d.getU());
    if (!err.ok())
        return;
    uint64_t comm = d.getU();
    uint64_t over = d.getU();
    uint64_t n = d.getU();
    if (n > ring.size()) {
        err.add(csprintf("trace holds %llu records, capacity %zu",
                         (unsigned long long)n, ring.size()));
        return;
    }
    std::vector<TraceRecord> recs;
    recs.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
        TraceRecord r;
        r.pc = d.getU();
        r.cycle = d.getU();
        r.cls = static_cast<OpClass>(d.getU());
        recs.push_back(r);
    }
    if (!d.ok()) {
        err.add("trace: " + d.error());
        return;
    }
    committed_ = comm;
    overwritten = over;
    head = 0;
    count = recs.size();
    for (size_t i = 0; i < recs.size(); ++i)
        ring[i] = recs[i];
}

} // namespace firesim
