/**
 * @file
 * TracerV-style committed-instruction trace.
 *
 * The RISC-V core calls record() at every instruction commit with the
 * pc, an opcode class, and the core cycle. Records land in a
 * preallocated ring buffer — recording never allocates and never
 * touches target state, so the trace is out-of-band by construction:
 * enabling it changes no target-visible cycle (asserted by
 * tests/telemetry). When the ring fills, the oldest records are
 * overwritten and counted, exactly like TracerV's bounded DMA buffer.
 *
 * Draining happens on the host's schedule: drain() hands back the
 * retained records in commit order, encodeCompressed() delta+varint
 * packs them (~3-5 bytes/record for loopy code vs 17 raw) for the
 * to-disk sink, and HotnessProfile accumulates a top-N-PC report — the
 * poor man's flame graph the paper's out-of-band debugging story
 * enables.
 */

#ifndef FIRESIM_TELEMETRY_INSTR_TRACE_HH
#define FIRESIM_TELEMETRY_INSTR_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/units.hh"

namespace firesim
{

class ThreadPool;
class Serializer;
class Deserializer;
struct SnapshotErrors;

/** Coarse committed-instruction classification (TracerV groups). */
enum class OpClass : uint8_t
{
    IntAlu = 0, //!< ALU / LUI / AUIPC / OP-IMM
    Load = 1,
    Store = 2,
    Branch = 3, //!< conditional branches
    Jump = 4,   //!< JAL / JALR
    MulDiv = 5,
    System = 6, //!< ECALL / EBREAK / fences
    Custom = 7, //!< RoCC custom-0/1
};

/** Printable name of @p cls ("load", "branch", ...). */
const char *opClassName(OpClass cls);

struct TraceRecord
{
    uint64_t pc = 0;
    uint64_t cycle = 0;
    OpClass cls = OpClass::IntAlu;

    bool
    operator==(const TraceRecord &o) const
    {
        return pc == o.pc && cycle == o.cycle && cls == o.cls;
    }
};

class InstructionTrace
{
  public:
    /** @param capacity ring size in records (nonzero). */
    explicit InstructionTrace(size_t capacity = 1 << 16);

    /**
     * Hot path: store one commit. No allocation, no branches beyond
     * the wrap check — the caller guards with a null-pointer test that
     * the compiler folds away when tracing is off.
     */
    void
    record(uint64_t pc, OpClass cls, Cycles cycle)
    {
        size_t slot = (head + count) % ring.size();
        if (count == ring.size()) {
            head = (head + 1) % ring.size();
            ++overwritten;
        } else {
            ++count;
        }
        ring[slot] = TraceRecord{pc, cycle, cls};
        ++committed_;
    }

    /** Records currently retained in the ring. */
    size_t size() const { return count; }
    size_t capacity() const { return ring.size(); }
    /** Total commits ever recorded (including overwritten ones). */
    uint64_t committed() const { return committed_; }
    /** Records lost to ring overflow. */
    uint64_t dropped() const { return overwritten; }

    /** Retained records in commit order; clears the ring. */
    std::vector<TraceRecord> drain();

    /**
     * Delta+LEB128 encoding of the retained records (does not drain):
     * a 16-byte header, then per record a zigzag pc delta, a cycle
     * delta, and the class byte. Deterministic: identical traces
     * encode to identical bytes, which is what the bit-identical
     * reproducibility test compares.
     */
    std::string encodeCompressed() const;

    /**
     * Parallel encode on @p pool: the ring is chunked into one segment
     * per pool thread, each encoded concurrently, and the results are
     * concatenated in order. A record's encoding depends only on the
     * previous record and itself, and each chunk reads its predecessor
     * raw from the ring, so the output is byte-identical to the serial
     * path (asserted in tests/telemetry). Null pool, a width-1 pool, or
     * a small trace falls back to the serial encoder.
     */
    std::string encodeCompressed(ThreadPool *pool) const;

    /** Inverse of encodeCompressed(); panics on a corrupt stream. */
    static std::vector<TraceRecord> decodeCompressed(
        const std::string &bytes);

    /** Write encodeCompressed() to @p path; false on I/O failure.
     *  A non-null @p pool selects the parallel encoder. */
    bool writeCompressed(const std::string &path,
                         ThreadPool *pool = nullptr) const;

    /** Read a file written by writeCompressed(). */
    static std::vector<TraceRecord> readCompressed(
        const std::string &path);

    /**
     * Serialize the retained records in logical (commit) order plus
     * the lifetime counters. Restore lays the records back from slot 0
     * — the physical ring offset is not observable through drain() or
     * encodeCompressed(), so the restored trace behaves identically.
     */
    void snapshotSave(Serializer &s) const;
    void snapshotRestore(Deserializer &d, SnapshotErrors &err);

  private:
    std::vector<TraceRecord> ring;
    size_t head = 0;  //!< index of the oldest retained record
    size_t count = 0; //!< retained records
    uint64_t committed_ = 0;
    uint64_t overwritten = 0;
};

/**
 * Top-N-PC hotness accumulated from drained trace records. Feed it
 * every drain; report() renders the classic profile table.
 */
class HotnessProfile
{
  public:
    void add(const TraceRecord &rec);
    void add(const std::vector<TraceRecord> &recs);

    uint64_t total() const { return total_; }

    struct Entry
    {
        uint64_t pc = 0;
        uint64_t commits = 0;
        OpClass cls = OpClass::IntAlu; //!< class of the last commit seen
    };

    /** The @p n hottest PCs, most-committed first (ties by pc). */
    std::vector<Entry> top(size_t n) const;

    /** Rendered top-N table with per-PC commit share. */
    std::string report(size_t n) const;

  private:
    struct Cell
    {
        uint64_t commits = 0;
        OpClass cls = OpClass::IntAlu;
    };
    // pc -> cell; an ordered map keeps ranking ties deterministic.
    std::map<uint64_t, Cell> cells;
    uint64_t total_ = 0;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_INSTR_TRACE_HH
