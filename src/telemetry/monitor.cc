#include "telemetry/monitor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "net/remote/shard_transport.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/stat_registry.hh"

namespace firesim
{

ClusterMonitor::ClusterMonitor(MonitorConfig config, uint32_t rank,
                               uint32_t shards)
    : cfg(std::move(config)), rank_(rank), shards_(shards)
{
    if (cfg.heartbeatPath.empty())
        cfg.heartbeatPath = "heartbeat.jsonl";
    epoch = Clock::now();
    lastHeartbeatAt = epoch;
    lastStatusAt = epoch;
    if (cfg.heartbeatEvery != 0) {
        // A crashed run's heartbeat trail is exactly what a postmortem
        // wants to read; opening with "wb" would truncate it. Rotate a
        // non-empty leftover to `.prev` so resume keeps one generation
        // of history.
        if (std::FILE *old = std::fopen(cfg.heartbeatPath.c_str(), "rb")) {
            std::fseek(old, 0, SEEK_END);
            long size = std::ftell(old);
            std::fclose(old);
            if (size > 0)
                std::rename(cfg.heartbeatPath.c_str(),
                            (cfg.heartbeatPath + ".prev").c_str());
        }
        heartbeatFile = std::fopen(cfg.heartbeatPath.c_str(), "wb");
        if (!heartbeatFile)
            warn("monitor: cannot open heartbeat file '%s'; heartbeats "
                 "go unrecorded",
                 cfg.heartbeatPath.c_str());
    }
}

ClusterMonitor::~ClusterMonitor()
{
    if (heartbeatFile)
        std::fclose(heartbeatFile);
}

void
ClusterMonitor::onAttach(TokenFabric &fabric_ref)
{
    fabric = &fabric_ref;
}

void
ClusterMonitor::onRoundStart(Cycles round_start, uint64_t round)
{
    (void)round_start;
    uint64_t stride = cfg.latencySampleEvery ? cfg.latencySampleEvery : 1;
    samplingThisRound = round % stride == 0;
    if (samplingThisRound)
        roundT0 = Clock::now();
}

void
ClusterMonitor::onRoundEnd(Cycles round_start, uint64_t round)
{
    // The un-sampled path is the per-round cost of a monitored run:
    // one modulo (onRoundStart) and one branch per check below.
    if (samplingThisRound) {
        auto now = Clock::now();
        uint64_t dt = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - roundT0)
                .count());
        // EWMA with integer arithmetic; alpha is folded into a /256
        // fixed-point weight, clamped to [1, 256] so an out-of-range
        // alpha cannot underflow the (256 - w) complement.
        uint32_t w = static_cast<uint32_t>(cfg.ewmaAlpha * 256.0);
        w = std::min(std::max(w, 1u), 256u);
        ewmaNs = ewmaNs == 0
                     ? dt
                     : (ewmaNs * (256 - w) + dt * w) / 256;
        ++sampleCount;

        // Straggler detection rides the latency sampling stride, not
        // the heartbeat cadence: a run with heartbeats off (or set
        // very sparse) still latches stragglers promptly.
        detectStragglers(rankLatencies(), round, round_start);

        // The status line's wall-clock cadence is checked on sampled
        // rounds only — it fires every statusIntervalSec seconds, so
        // a stride of microseconds cannot meaningfully delay it.
        if (cfg.statusIntervalSec != 0) {
            auto since =
                std::chrono::duration_cast<std::chrono::seconds>(
                    now - lastStatusAt)
                    .count();
            if (static_cast<uint64_t>(since) >= cfg.statusIntervalSec) {
                lastStatusAt = now;
                double host_s =
                    std::chrono::duration<double>(now - epoch).count();
                double mhz =
                    host_s > 0.0
                        ? static_cast<double>(round_start) / host_s / 1e6
                        : 0.0;
                statusLine(round_start, round, mhz, rankLatencies());
            }
        }
    }

    if (cfg.heartbeatEvery != 0 && (round + 1) % cfg.heartbeatEvery == 0)
        emitHeartbeat(round_start, round);
}

std::vector<ClusterMonitor::RankLatency>
ClusterMonitor::rankLatencies() const
{
    std::vector<RankLatency> out;
    out.push_back(RankLatency{rank_, ewmaNs, true});
    if (transport_) {
        const auto &ranks = transport_->peerRanks();
        for (size_t i = 0; i < ranks.size(); ++i) {
            const auto &ps = transport_->peerStatsAt(i);
            out.push_back(
                RankLatency{ranks[i], ps.peerRoundNs, ps.alive});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const RankLatency &a, const RankLatency &b) {
                  return a.rank < b.rank;
              });
    return out;
}

uint64_t
ClusterMonitor::channelOccupancy() const
{
    if (!fabric)
        return 0;
    uint64_t sum = 0;
    for (size_t i = 0; i < fabric->channelCount(); ++i)
        sum += fabric->channelAt(i).depth();
    return sum;
}

uint64_t
ClusterMonitor::totalStallNs() const
{
    if (!transport_)
        return 0;
    uint64_t sum = 0;
    for (size_t i = 0; i < transport_->peerRanks().size(); ++i)
        sum += transport_->peerStatsAt(i).stallNs;
    return sum;
}

void
ClusterMonitor::detectStragglers(const std::vector<RankLatency> &lat,
                                 uint64_t round, Cycles cycle)
{
    // A dead rank is not a straggler — unlatch it so the
    // firesim_stragglers gauge tracks live laggards only (a revived
    // rank may re-latch later).
    latchedStragglers.erase(
        std::remove_if(latchedStragglers.begin(), latchedStragglers.end(),
                       [&lat](uint32_t r) {
                           for (const auto &rl : lat)
                               if (rl.rank == r)
                                   return !rl.alive;
                           return false;
                       }),
        latchedStragglers.end());

    // Median over every rank with a sample (a peer that has not yet
    // reported shows 0 and is excluded; so is a dead one).
    std::vector<uint64_t> samples;
    for (const auto &rl : lat)
        if (rl.alive && rl.latencyNs != 0)
            samples.push_back(rl.latencyNs);
    if (samples.size() < 2)
        return; // nothing to compare against
    std::sort(samples.begin(), samples.end());
    uint64_t median = samples[samples.size() / 2];
    if (median == 0)
        return;
    for (const auto &rl : lat) {
        if (!rl.alive || rl.latencyNs == 0)
            continue;
        if (static_cast<double>(rl.latencyNs) <=
            cfg.stragglerFactor * static_cast<double>(median))
            continue;
        if (std::find(latchedStragglers.begin(), latchedStragglers.end(),
                      rl.rank) != latchedStragglers.end())
            continue; // already latched; fire once per rank
        latchedStragglers.push_back(rl.rank);
        std::sort(latchedStragglers.begin(), latchedStragglers.end());
        if (stragglerSink)
            stragglerSink(rl.rank, rl.latencyNs, median, round, cycle);
    }
}

std::string
ClusterMonitor::heartbeatJson(Cycles cycle, uint64_t round,
                              const std::vector<RankLatency> &lat,
                              double sim_mhz, uint64_t occupancy,
                              uint64_t stall_ns) const
{
    std::string shards;
    for (const auto &rl : lat) {
        if (!shards.empty())
            shards += ", ";
        shards += csprintf(
            "{\"rank\": %u, \"round_latency_ns\": %llu, "
            "\"alive\": %s}",
            rl.rank, (unsigned long long)rl.latencyNs,
            rl.alive ? "true" : "false");
    }
    std::string stragglers;
    for (uint32_t r : latchedStragglers) {
        if (!stragglers.empty())
            stragglers += ", ";
        stragglers += csprintf("%u", r);
    }
    uint64_t health = healthEventsFn ? healthEventsFn() : 0;
    std::string ckpt_age =
        haveCheckpoint
            ? csprintf("%llu",
                       (unsigned long long)(cycle - lastCheckpointCycle))
            : std::string("null");
    return csprintf(
        "{\"cycle\": %llu, \"round\": %llu, \"rank\": %u, "
        "\"shards\": %u, \"sim_mhz\": %.6g, "
        "\"round_latency_ns\": %llu, \"barrier_stall_ns\": %llu, "
        "\"channel_occupancy\": %llu, \"health_events\": %llu, "
        "\"live_peers\": %zu, \"checkpoint_age_cycles\": %s, "
        "\"per_shard\": [%s], \"stragglers\": [%s]}",
        (unsigned long long)cycle, (unsigned long long)round, rank_,
        shards_, sim_mhz, (unsigned long long)ewmaNs,
        (unsigned long long)stall_ns, (unsigned long long)occupancy,
        (unsigned long long)health,
        transport_ ? transport_->livePeers() : 0, ckpt_age.c_str(),
        shards.c_str(), stragglers.c_str());
}

std::string
ClusterMonitor::prometheusText(Cycles cycle,
                               const std::vector<RankLatency> &lat,
                               double sim_mhz, uint64_t occupancy,
                               uint64_t stall_ns) const
{
    std::string out;
    out += "# TYPE firesim_sim_cycle counter\n";
    out += csprintf("firesim_sim_cycle{rank=\"%u\"} %llu\n", rank_,
                    (unsigned long long)cycle);
    out += "# TYPE firesim_sim_rate_mhz gauge\n";
    out += csprintf("firesim_sim_rate_mhz{rank=\"%u\"} %.6g\n", rank_,
                    sim_mhz);
    out += "# TYPE firesim_round_latency_ns gauge\n";
    for (const auto &rl : lat) {
        if (!rl.alive)
            continue;
        out += csprintf(
            "firesim_round_latency_ns{rank=\"%u\",reported_by=\"%u\"} "
            "%llu\n",
            rl.rank, rank_, (unsigned long long)rl.latencyNs);
    }
    out += "# TYPE firesim_barrier_stall_ns counter\n";
    out += csprintf("firesim_barrier_stall_ns{rank=\"%u\"} %llu\n",
                    rank_, (unsigned long long)stall_ns);
    out += "# TYPE firesim_channel_occupancy gauge\n";
    out += csprintf("firesim_channel_occupancy{rank=\"%u\"} %llu\n",
                    rank_, (unsigned long long)occupancy);
    out += "# TYPE firesim_health_events counter\n";
    out += csprintf("firesim_health_events{rank=\"%u\"} %llu\n", rank_,
                    (unsigned long long)(healthEventsFn ? healthEventsFn()
                                                        : 0));
    out += "# TYPE firesim_live_peers gauge\n";
    out += csprintf("firesim_live_peers{rank=\"%u\"} %zu\n", rank_,
                    transport_ ? transport_->livePeers() : 0);
    out += "# TYPE firesim_stragglers gauge\n";
    out += csprintf("firesim_stragglers{rank=\"%u\"} %zu\n", rank_,
                    latchedStragglers.size());
    if (haveCheckpoint) {
        out += "# TYPE firesim_checkpoint_age_cycles gauge\n";
        out += csprintf(
            "firesim_checkpoint_age_cycles{rank=\"%u\"} %llu\n", rank_,
            (unsigned long long)(cycle - lastCheckpointCycle));
    }
    return out;
}

void
ClusterMonitor::statusLine(Cycles cycle, uint64_t round, double sim_mhz,
                           const std::vector<RankLatency> &lat)
{
    std::string peers;
    if (shards_ > 1) {
        size_t alive = 0;
        for (const auto &rl : lat)
            alive += rl.alive ? 1 : 0;
        peers = csprintf(", %zu/%u shards up", alive, shards_);
    }
    std::string stragglers;
    if (!latchedStragglers.empty())
        stragglers =
            csprintf(", %zu straggler(s)", latchedStragglers.size());
    // Straight to stderr, not inform(): the default log level is Warn,
    // and a progress line the user explicitly asked for with
    // --status-interval must not be silenced by it.
    std::fprintf(stderr,
                 "status: cycle %llu, round %llu, %.2f MHz, round "
                 "latency %llu ns%s%s\n",
                 (unsigned long long)cycle, (unsigned long long)round,
                 sim_mhz, (unsigned long long)ewmaNs, peers.c_str(),
                 stragglers.c_str());
}

void
ClusterMonitor::emitHeartbeat(Cycles cycle, uint64_t round)
{
    auto now = Clock::now();
    // Sim rate over the heartbeat window; the first heartbeat rates
    // from monitor creation, and a zero-wall-time window reads 0
    // rather than dividing by it.
    double host_s = std::chrono::duration<double>(
                        now - (firstHeartbeat ? epoch : lastHeartbeatAt))
                        .count();
    Cycles cycles = cycle - (firstHeartbeat ? 0 : lastHeartbeatCycle);
    double sim_mhz =
        host_s > 0.0 ? static_cast<double>(cycles) / host_s / 1e6 : 0.0;
    firstHeartbeat = false;
    lastHeartbeatAt = now;
    lastHeartbeatCycle = cycle;
    ++heartbeatCount;

    auto lat = rankLatencies();
    detectStragglers(lat, round, cycle);
    uint64_t occupancy = channelOccupancy();
    uint64_t stall_ns = totalStallNs();

    if (heartbeatFile) {
        std::string line =
            heartbeatJson(cycle, round, lat, sim_mhz, occupancy,
                          stall_ns);
        line += '\n';
        std::fwrite(line.data(), 1, line.size(), heartbeatFile);
        std::fflush(heartbeatFile);
    }

    if (!cfg.metricsPath.empty()) {
        std::string err = atomicWriteFile(
            cfg.metricsPath,
            prometheusText(cycle, lat, sim_mhz, occupancy, stall_ns),
            "metrics");
        if (!err.empty())
            warn("monitor: %s", err.c_str());
    }

    if (recorder) {
        recorder->record(FlightRecorder::EventKind::Heartbeat, round,
                         cycle, "", ewmaNs,
                         static_cast<uint64_t>(sim_mhz * 1e6));
    }
}

} // namespace firesim
