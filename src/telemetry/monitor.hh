/**
 * @file
 * Live cluster heartbeat monitor (paper Section III-C: the simulation
 * manager's operator view — FireSim operators watch hundreds of
 * FPGA-hosted nodes through one pane of glass).
 *
 * A ClusterMonitor is a FabricObserver that times a strided sample of
 * rounds on the driving thread (latencySampleEvery) and, every
 * `heartbeatEvery` rounds, emits:
 *
 *  - one structured-JSONL heartbeat line (simulated cycle, target-MHz
 *    sim rate, per-shard round-latency EWMA, barrier skew, channel
 *    occupancy, health-event count, live peers, checkpoint age),
 *  - an optional Prometheus text-exposition file, refreshed via the
 *    snapshot layer's atomic tmp+fsync+rename write so scrapers never
 *    see a torn file,
 *  - an optional human-readable status line on a wall-clock cadence
 *    (--status-interval).
 *
 * It also runs per-shard straggler detection: every heartbeat it
 * takes the median round latency across {local EWMA, each peer's
 * RoundDone-reported EWMA} and latches any rank whose latency exceeds
 * stragglerFactor x that median, firing the straggler sink once per
 * rank (the Cluster raises a StragglerDetected health event and a
 * flight-recorder entry through it).
 *
 * Everything here reads simulation state and host clocks only — a
 * monitored run stays byte-identical to an unmonitored one, and with
 * MonitorConfig::enabled() false the Cluster allocates nothing
 * (bench_telemetry_overhead holds the heartbeat-on overhead to <1%).
 */

#ifndef FIRESIM_TELEMETRY_MONITOR_HH
#define FIRESIM_TELEMETRY_MONITOR_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "net/fabric.hh"

namespace firesim
{

class FlightRecorder;
class ShardTransport;

struct MonitorConfig
{
    /** Emit a heartbeat every this many fabric rounds (0 = off). */
    uint64_t heartbeatEvery = 0;
    /** Heartbeat JSONL path ("" = heartbeat.jsonl; the Cluster
     *  prefixes its dump dir and rank-suffixes distributed runs). */
    std::string heartbeatPath;
    /** Human status line every this many wall seconds (0 = off). */
    uint64_t statusIntervalSec = 0;
    /** Prometheus text-exposition file, atomically refreshed on every
     *  heartbeat ("" = off). */
    std::string metricsPath;
    /** A rank is a straggler when its round-latency EWMA exceeds this
     *  factor times the cluster median. */
    double stragglerFactor = 3.0;
    /** Round-latency EWMA smoothing (weight of the newest sample). */
    double ewmaAlpha = 0.2;
    /**
     * Time one round in every this many (round 0 always sampled; 0
     * behaves as 1 = every round). Reading the host clock twice per
     * round costs more than everything else the monitor does — on a
     * fast target a round is ~0.5 us of host time and each
     * steady_clock read is ~50 ns — so the latency EWMA feeding
     * straggler detection is built from a strided sample instead.
     */
    uint64_t latencySampleEvery = 64;
    /** Target clock for the sim-rate line (paper: 3.2 GHz cores). */
    double targetFreqGhz = 1.0;

    bool
    enabled() const
    {
        return heartbeatEvery != 0 || statusIntervalSec != 0 ||
               !metricsPath.empty();
    }
};

class ClusterMonitor : public FabricObserver
{
  public:
    /** @p rank / @p shards name this process in heartbeats. */
    ClusterMonitor(MonitorConfig config, uint32_t rank, uint32_t shards);
    ~ClusterMonitor() override;

    const MonitorConfig &config() const { return cfg; }

    /** Cross-shard inputs (peer latencies, barrier stalls). Optional;
     *  single-process runs monitor themselves only. */
    void setTransport(const ShardTransport *transport)
    {
        transport_ = transport;
    }

    /** Heartbeats mirror into the flight recorder when set. */
    void setFlightRecorder(FlightRecorder *fr) { recorder = fr; }

    /** Count of health events to report in heartbeats (the Cluster
     *  bridges its HealthMonitor; telemetry cannot depend on fault). */
    void setHealthEventsProvider(std::function<uint64_t()> fn)
    {
        healthEventsFn = std::move(fn);
    }

    /** Fired once per rank when straggler detection latches. */
    using StragglerSinkFn = std::function<void(
        uint32_t rank, uint64_t latency_ns, uint64_t median_ns,
        uint64_t round, Cycles cycle)>;
    void setStragglerSink(StragglerSinkFn fn)
    {
        stragglerSink = std::move(fn);
    }

    /** The CheckpointManager reports snapshot writes for the
     *  checkpoint-age heartbeat field. */
    void noteCheckpoint(Cycles cycle)
    {
        lastCheckpointCycle = cycle;
        haveCheckpoint = true;
    }

    /** Local round-latency EWMA in ns — the transport's RoundDone
     *  latency provider reads this. */
    uint64_t roundLatencyNs() const { return ewmaNs; }

    uint64_t heartbeats() const { return heartbeatCount; }

    /** Rounds actually timed (one per latencySampleEvery stride). */
    uint64_t latencySamples() const { return sampleCount; }

    /** Ranks latched as stragglers so far (ascending). */
    const std::vector<uint32_t> &stragglers() const
    {
        return latchedStragglers;
    }

    /** Force one heartbeat now (end-of-run flush; also testable). */
    void emitHeartbeat(Cycles cycle, uint64_t round);

    // ---- FabricObserver ---------------------------------------------
    void onAttach(TokenFabric &fabric) override;
    void onRoundStart(Cycles round_start, uint64_t round) override;
    void onRoundEnd(Cycles round_start, uint64_t round) override;

  private:
    struct RankLatency
    {
        uint32_t rank = 0;
        uint64_t latencyNs = 0;
        bool alive = true;
    };

    /** {local EWMA} + every live peer's reported EWMA, by rank. */
    std::vector<RankLatency> rankLatencies() const;

    void detectStragglers(const std::vector<RankLatency> &lat,
                          uint64_t round, Cycles cycle);
    std::string heartbeatJson(Cycles cycle, uint64_t round,
                              const std::vector<RankLatency> &lat,
                              double sim_mhz, uint64_t occupancy,
                              uint64_t stall_ns) const;
    std::string prometheusText(Cycles cycle,
                               const std::vector<RankLatency> &lat,
                               double sim_mhz, uint64_t occupancy,
                               uint64_t stall_ns) const;
    void statusLine(Cycles cycle, uint64_t round, double sim_mhz,
                    const std::vector<RankLatency> &lat);
    uint64_t channelOccupancy() const;
    uint64_t totalStallNs() const;

    MonitorConfig cfg;
    uint32_t rank_;
    uint32_t shards_;
    const TokenFabric *fabric = nullptr;
    const ShardTransport *transport_ = nullptr;
    FlightRecorder *recorder = nullptr;
    std::function<uint64_t()> healthEventsFn;
    StragglerSinkFn stragglerSink;

    std::FILE *heartbeatFile = nullptr;

    using Clock = std::chrono::steady_clock;
    Clock::time_point roundT0;
    Clock::time_point epoch;
    Clock::time_point lastHeartbeatAt;
    Clock::time_point lastStatusAt;
    Cycles lastHeartbeatCycle = 0;
    bool firstHeartbeat = true;

    bool samplingThisRound = false;

    uint64_t ewmaNs = 0;
    uint64_t sampleCount = 0;
    uint64_t heartbeatCount = 0;
    Cycles lastCheckpointCycle = 0;
    bool haveCheckpoint = false;
    std::vector<uint32_t> latchedStragglers;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_MONITOR_HH
