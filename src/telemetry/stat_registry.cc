#include "telemetry/stat_registry.hh"

#include <cmath>

#include "base/logging.hh"

namespace firesim
{

const double *
StatSnapshot::find(const std::string &name) const
{
    for (const auto &kv : values)
        if (kv.first == name)
            return &kv.second;
    return nullptr;
}

double
StatSnapshot::value(const std::string &name) const
{
    const double *v = find(name);
    if (!v)
        panic("snapshot has no stat named '%s'", name.c_str());
    return *v;
}

StatSnapshot
diffSnapshots(const StatSnapshot &before, const StatSnapshot &after)
{
    if (before.values.size() != after.values.size())
        panic("snapshot diff across different registries (%zu vs %zu "
              "stats)",
              before.values.size(), after.values.size());
    StatSnapshot out;
    out.at = after.at - before.at;
    out.values.reserve(after.values.size());
    for (size_t i = 0; i < after.values.size(); ++i) {
        if (before.values[i].first != after.values[i].first)
            panic("snapshot diff name mismatch: '%s' vs '%s'",
                  before.values[i].first.c_str(),
                  after.values[i].first.c_str());
        out.values.emplace_back(after.values[i].first,
                                after.values[i].second -
                                    before.values[i].second);
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += csprintf("\\u%04x", c);
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
StatRegistry::validateName(const std::string &name)
{
    if (name.empty())
        panic("empty stat name");
    bool prev_dot = true; // catches a leading dot
    for (char c : name) {
        if (c == '.') {
            if (prev_dot)
                panic("malformed stat name '%s' (empty path component)",
                      name.c_str());
            prev_dot = true;
            continue;
        }
        // Any printable ASCII except space: topology labels can carry
        // quotes/backslashes (the dumps escape them), but whitespace
        // and control characters would corrupt the CSV dump.
        bool ok = c > 0x20 && c < 0x7f;
        if (!ok)
            panic("malformed stat name '%s' (bad character '%c')",
                  name.c_str(), c);
        prev_dot = false;
    }
    if (prev_dot)
        panic("malformed stat name '%s' (trailing dot)", name.c_str());
}

void
StatRegistry::registerProbe(const std::string &name, Probe probe)
{
    validateName(name);
    if (!probe)
        panic("null probe for stat '%s'", name.c_str());
    auto [it, inserted] = probes.emplace(name, std::move(probe));
    (void)it;
    if (!inserted)
        panic("stat name collision: '%s' registered twice", name.c_str());
}

void
StatRegistry::registerCounter(const std::string &name,
                              const Counter &counter)
{
    const Counter *c = &counter;
    registerProbe(name,
                  [c] { return static_cast<double>(c->value()); });
}

void
StatRegistry::registerHistogram(const std::string &name,
                                const Histogram &hist)
{
    const Histogram *h = &hist;
    registerProbe(name + ".count",
                  [h] { return static_cast<double>(h->count()); });
    registerProbe(name + ".mean", [h] { return h->mean(); });
    registerProbe(name + ".p50",
                  [h] { return h->percentileNearestRank(50); });
    registerProbe(name + ".p99",
                  [h] { return h->percentileNearestRank(99); });
}

bool
StatRegistry::has(const std::string &name) const
{
    return probes.count(name) != 0;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(probes.size());
    for (const auto &kv : probes)
        out.push_back(kv.first);
    return out;
}

StatSnapshot
StatRegistry::snapshot(Cycles at) const
{
    StatSnapshot snap;
    snap.at = at;
    snap.values.reserve(probes.size());
    for (const auto &kv : probes)
        snap.values.emplace_back(kv.first, kv.second());
    return snap;
}

std::string
StatRegistry::formatValue(double v)
{
    // Counters dominate the registry; print them as integers so the
    // dumps diff cleanly. 2^53 bounds exact integer representation.
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15)
        return csprintf("%lld", static_cast<long long>(v));
    if (!std::isfinite(v))
        return "0"; // JSON has no inf/nan; a poisoned probe reads as 0
    return csprintf("%.17g", v);
}

std::string
StatRegistry::dumpJson(Cycles at) const
{
    std::string out = csprintf("{\"cycle\": %llu, \"stats\": {",
                               (unsigned long long)at);
    bool first = true;
    for (const auto &kv : probes) {
        if (!first)
            out += ", ";
        first = false;
        out += csprintf("\"%s\": %s", jsonEscape(kv.first).c_str(),
                        formatValue(kv.second()).c_str());
    }
    out += "}}";
    return out;
}

// RFC-4180 quoting for the few names that need it (commas or quotes
// are possible now that stat names accept printable ASCII).
std::string
StatRegistry::csvField(const std::string &s)
{
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
StatRegistry::dumpCsv(Cycles at) const
{
    std::string out = csprintf("# cycle %llu\nstat,value\n",
                               (unsigned long long)at);
    for (const auto &kv : probes)
        out += csprintf("%s,%s\n", csvField(kv.first).c_str(),
                        formatValue(kv.second()).c_str());
    return out;
}

} // namespace firesim
