/**
 * @file
 * The simulator's single observability spine (TracerV/AutoCounter
 * lineage): every component's counters register here under a
 * hierarchical dotted name ("cluster.switch0.packetsDropped"), and
 * every consumer — the AutoCounter sampler, the end-of-run JSON/CSV
 * dumps, checkpoint diffing — reads through the same registry instead
 * of growing private plumbing per experiment.
 *
 * Registration is non-owning: the registry holds probes (callables)
 * that read the live counter on demand, so registering costs nothing
 * on the component's hot path. The registry must not outlive the
 * components it observes (Cluster guarantees this by owning both).
 */

#ifndef FIRESIM_TELEMETRY_STAT_REGISTRY_HH
#define FIRESIM_TELEMETRY_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"

namespace firesim
{

/** One point-in-time reading of every registered stat, in name order. */
struct StatSnapshot
{
    /** Target cycle the snapshot was taken at. */
    Cycles at = 0;
    std::vector<std::pair<std::string, double>> values;

    /** Pointer to @p name's value, or nullptr when absent. */
    const double *find(const std::string &name) const;

    /** Value of @p name; panics when absent. */
    double value(const std::string &name) const;
};

/**
 * Element-wise `after - before`, matched by name. Both snapshots must
 * come from the same registry (identical name sets); the result's
 * cycle stamp is the elapsed cycles. This is the diff-between-
 * checkpoints primitive: dump a snapshot before and after a phase and
 * diff them to see exactly what that phase did.
 */
StatSnapshot diffSnapshots(const StatSnapshot &before,
                           const StatSnapshot &after);

/**
 * Escape @p s for embedding inside a JSON string literal: `"` and
 * `\` get backslash-escaped, control characters become `\n`/`\t`/...
 * or `\u00XX`. Every telemetry emitter (stat dumps, trace events,
 * heartbeats, flight recorder) routes strings through this.
 */
std::string jsonEscape(const std::string &s);

class StatRegistry
{
  public:
    using Probe = std::function<double()>;

    /**
     * Register a generic probe under @p name. Names are dotted
     * hierarchical paths of printable-ASCII components (no spaces or
     * control characters; `"`/`\` are allowed — topology labels can
     * carry them — and the dumps escape them); duplicate or malformed
     * names are simulator bugs and panic.
     */
    void registerProbe(const std::string &name, Probe probe);

    /** Register a live Counter (non-owning). */
    void registerCounter(const std::string &name, const Counter &counter);

    /**
     * Register a Histogram as the derived scalars <name>.count,
     * <name>.mean, <name>.p50 and <name>.p99. The percentiles use
     * nearest-rank semantics (exact sample values, never interpolated
     * ones) so a dumped p99 is a value that actually occurred.
     */
    void registerHistogram(const std::string &name, const Histogram &hist);

    bool has(const std::string &name) const;
    size_t size() const { return probes.size(); }

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Read every stat now; @p at stamps the target cycle. */
    StatSnapshot snapshot(Cycles at = 0) const;

    /** One JSON object: {"cycle": N, "stats": {name: value, ...}}. */
    std::string dumpJson(Cycles at = 0) const;

    /** CSV with a header row ("stat,value") for spreadsheet import. */
    std::string dumpCsv(Cycles at = 0) const;

    /** Format @p v the way the dumps do (integers stay integral). */
    static std::string formatValue(double v);

    /** RFC-4180 CSV field quoting for stat names (commas/quotes are
     *  legal in names). Shared by dumpCsv and the cross-shard
     *  aggregator's mergedCsv so the two emit identical quoting. */
    static std::string csvField(const std::string &s);

  private:
    static void validateName(const std::string &name);

    // Ordered map: dumps and snapshots are deterministic in name order.
    std::map<std::string, Probe> probes;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_STAT_REGISTRY_HH
