#include "telemetry/telemetry.hh"

#include <cstdio>

#include "base/logging.hh"

namespace firesim
{

Telemetry::Telemetry(TelemetryConfig config)
    : cfg(std::move(config)), sink(cfg.maxTraceEvents)
{}

void
Telemetry::attach(TokenFabric &fabric)
{
    FS_ASSERT(!attached, "telemetry attached to a fabric twice");
    attached = true;
    if (cfg.samplePeriod) {
        sampler_ = std::make_unique<AutoCounterSampler>(
            reg, cfg.samplePeriod);
        sampler_->attachTo(fabric);
    }
    if (cfg.hostProfile) {
        profiler_ = std::make_unique<HostProfiler>(sink);
        fabric.addObserver(profiler_.get());
    }
    debug("telemetry attached: %zu stats, sample period %llu, host "
          "profiling %s",
          reg.size(), (unsigned long long)cfg.samplePeriod,
          cfg.hostProfile ? "on" : "off");
}

void
Telemetry::dumpAtExit(Cycles now)
{
    if (cfg.dumpDir.empty())
        return;
    std::string dir = cfg.dumpDir;
    if (dir.back() != '/')
        dir += '/';

    std::string stats_path = dir + "stats.json";
    std::FILE *f = std::fopen(stats_path.c_str(), "wb");
    if (!f) {
        warn("telemetry dump dir '%s' not writable; skipping dump",
             cfg.dumpDir.c_str());
        return;
    }
    std::string doc = reg.dumpJson(now);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    inform("telemetry: %zu stats dumped to %s", reg.size(),
           stats_path.c_str());

    if (sampler_) {
        std::string csv_path = dir + "autocounter.csv";
        std::FILE *c = std::fopen(csv_path.c_str(), "wb");
        if (c) {
            std::string csv = sampler_->csv();
            std::fwrite(csv.data(), 1, csv.size(), c);
            std::fclose(c);
            inform("telemetry: %zu AutoCounter samples dumped to %s",
                   sampler_->series().size(), csv_path.c_str());
        }
    }
    if (profiler_)
        sink.writeJson(dir + "trace.json");
}

} // namespace firesim
