/**
 * @file
 * The per-cluster telemetry bundle: one StatRegistry, one optional
 * AutoCounter sampler, one optional host profiler with a Chrome
 * trace_event sink, and sim-rate accounting, configured together and
 * wired by the Cluster (manager/cluster.hh exposes telemetry()).
 *
 * Everything is off by default and free when off: with
 * TelemetryConfig::enabled false the Cluster allocates nothing and
 * attaches no fabric observers, so the tick loop runs the exact
 * pre-telemetry path (bench_telemetry_overhead holds this to <2%).
 */

#ifndef FIRESIM_TELEMETRY_TELEMETRY_HH
#define FIRESIM_TELEMETRY_TELEMETRY_HH

#include <memory>
#include <string>

#include "telemetry/auto_counter.hh"
#include "telemetry/instr_trace.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_event.hh"

namespace firesim
{

struct TelemetryConfig
{
    /** Master switch; when false the Cluster builds no telemetry. */
    bool enabled = false;
    /** AutoCounter sampling period in target cycles; 0 = no sampler. */
    Cycles samplePeriod = 0;
    /** Emit Chrome trace spans for rounds / switch ticks / blade ticks. */
    bool hostProfile = false;
    /**
     * Export the round scheduler's per-worker busy/units/steal counters
     * (TokenFabric::schedTelemetry) into the stat registry under
     * cluster.fabric.sched.*. Off by default and deliberately separate
     * from `enabled`: these numbers are host wall-clock, so turning
     * them on makes stats.json vary run to run — everything else in the
     * registry stays byte-identical across worker counts and policies.
     */
    bool schedStats = false;
    /** Span cap for the trace sink (long runs stay bounded). */
    size_t maxTraceEvents = 1 << 20;
    /**
     * When non-empty, dump stats.json, autocounter.csv and trace.json
     * into this (existing) directory at Cluster destruction. Sharded
     * runs additionally write rank 0's merged cross-shard dumps
     * (merged_stats.json/.csv, merged_trace.json; telemetry/aggregate).
     */
    std::string dumpDir;
    /**
     * Distributed runs only: piggyback this rank's telemetry snapshot
     * on the RoundDone barrier every this many rounds, so rank 0's
     * merged view stays live mid-run (0 = final-exchange only, which
     * still happens whenever dumpDir is set). Pure host observability;
     * any value leaves simulation results byte-identical.
     */
    uint32_t aggregateEvery = 0;
};

class Telemetry
{
  public:
    explicit Telemetry(TelemetryConfig config = {});

    const TelemetryConfig &config() const { return cfg; }

    StatRegistry &registry() { return reg; }
    const StatRegistry &registry() const { return reg; }
    TraceEventSink &traceSink() { return sink; }
    SimRateTelemetry &simRate() { return simRate_; }

    /** The sampler, or nullptr when samplePeriod is 0. */
    AutoCounterSampler *sampler() { return sampler_.get(); }
    /** The profiler, or nullptr when hostProfile is off. */
    HostProfiler *profiler() { return profiler_.get(); }

    /**
     * Create the configured sampler/profiler and register them as
     * observers of @p fabric. Call once, after fabric finalize() and
     * after all stats are registered.
     */
    void attach(TokenFabric &fabric);

    /** End-of-run dump into config().dumpDir (no-op when empty). */
    void dumpAtExit(Cycles now);

  private:
    TelemetryConfig cfg;
    StatRegistry reg;
    TraceEventSink sink;
    SimRateTelemetry simRate_;
    std::unique_ptr<AutoCounterSampler> sampler_;
    std::unique_ptr<HostProfiler> profiler_;
    bool attached = false;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_TELEMETRY_HH
