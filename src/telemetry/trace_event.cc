#include "telemetry/trace_event.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "telemetry/stat_registry.hh"

namespace firesim
{

TraceEventSink::TraceEventSink(size_t max_events)
    : epoch(std::chrono::steady_clock::now()), maxEvents(max_events)
{
    if (max_events == 0)
        fatal("trace-event sink capacity must be nonzero");
}

uint32_t
TraceEventSink::intern(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == name)
            return static_cast<uint32_t>(i);
    names.push_back(name);
    return static_cast<uint32_t>(names.size() - 1);
}

double
TraceEventSink::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
TraceEventSink::complete(uint32_t name_id, const char *category,
                         double ts_us, double dur_us, uint32_t tid)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (events.size() >= maxEvents) {
        ++dropped;
        return;
    }
    FS_ASSERT(name_id < names.size(), "unknown span name id %u",
              name_id);
    events.push_back(Event{name_id, tid, category, ts_us, dur_us});
}

size_t
TraceEventSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return events.size();
}

uint64_t
TraceEventSink::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return dropped;
}

std::string
TraceEventSink::json() const
{
    std::lock_guard<std::mutex> lock(mtx);
    // The chrome://tracing "JSON object format": a traceEvents array
    // of complete events. pid is fixed (one simulator process); tid
    // separates the fabric lane from per-endpoint lanes.
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        out += csprintf(
            "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
            i ? "," : "", jsonEscape(names[e.name]).c_str(), e.cat,
            e.tid, e.ts, e.dur);
    }
    out += "\n]}";
    return out;
}

bool
TraceEventSink::writeJson(const std::string &path) const
{
    std::string doc = json();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("cannot open '%s' for the chrome trace", path.c_str());
        return false;
    }
    size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (n != doc.size()) {
        warn("short write of chrome trace to '%s'", path.c_str());
        return false;
    }
    inform("chrome trace written to %s (%zu spans, %llu dropped); open "
           "via chrome://tracing or ui.perfetto.dev",
           path.c_str(), eventCount(), (unsigned long long)droppedEvents());
    return true;
}

HostProfiler::HostProfiler(TraceEventSink &sink) : sink(sink)
{
    roundName = sink.intern("fabric.round");
    defaultName = sink.intern("endpoint.advance");
}

void
HostProfiler::labelEndpoint(size_t idx, const std::string &name,
                            const char *category)
{
    if (labels.size() <= idx)
        labels.resize(idx + 1);
    labels[idx].name = sink.intern(name);
    labels[idx].cat = category;
}

void
HostProfiler::onAttach(TokenFabric &fabric)
{
    advanceT0s.resize(fabric.endpointCount(), 0.0);
    sliceT0Base.assign(fabric.endpointCount(), 0);
    size_t slots = 0;
    for (size_t i = 0; i < fabric.endpointCount(); ++i) {
        uint32_t slices = fabric.endpointAt(i).advanceSliceCount();
        sliceT0Base[i] = slots;
        if (slices > 1)
            slots += static_cast<size_t>(slices) + 1; // + begin phase
    }
    sliceT0s.assign(slots, 0.0);
}

void
HostProfiler::onRoundStart(Cycles round_start, uint64_t round)
{
    (void)round_start;
    (void)round;
    roundT0 = sink.nowUs();
}

void
HostProfiler::onRoundEnd(Cycles round_start, uint64_t round)
{
    (void)round_start;
    (void)round;
    sink.complete(roundName, "fabric", roundT0, sink.nowUs() - roundT0,
                  0);
}

void
HostProfiler::onAdvanceStart(size_t endpoint_idx, Cycles round_start)
{
    (void)round_start;
    FS_ASSERT(endpoint_idx < advanceT0s.size(),
              "profiler attached before endpoint %zu was registered",
              endpoint_idx);
    advanceT0s[endpoint_idx] = sink.nowUs();
}

void
HostProfiler::onAdvanceEnd(size_t endpoint_idx, Cycles round_start)
{
    (void)round_start;
    EndpointLabel label;
    if (endpoint_idx < labels.size())
        label = labels[endpoint_idx];
    else
        label.name = defaultName;
    double t0 = advanceT0s[endpoint_idx];
    sink.complete(label.name, label.cat, t0, sink.nowUs() - t0,
                  static_cast<uint32_t>(endpoint_idx) + 1);
}

void
HostProfiler::onSliceStart(size_t endpoint_idx, int32_t slice,
                           Cycles round_start)
{
    (void)round_start;
    size_t slot = sliceT0Base.at(endpoint_idx) +
                  static_cast<size_t>(slice + 1);
    sliceT0s[slot] = sink.nowUs();
}

void
HostProfiler::onSliceEnd(size_t endpoint_idx, int32_t slice,
                         Cycles round_start)
{
    (void)round_start;
    EndpointLabel label;
    if (endpoint_idx < labels.size())
        label = labels[endpoint_idx];
    else
        label.name = defaultName;
    size_t slot = sliceT0Base.at(endpoint_idx) +
                  static_cast<size_t>(slice + 1);
    double t0 = sliceT0s[slot];
    // Slices of one endpoint share its lane; concurrent slices render
    // as stacked overlapping spans, which is what they are.
    sink.complete(label.name, label.cat, t0, sink.nowUs() - t0,
                  static_cast<uint32_t>(endpoint_idx) + 1);
}

void
SimRateTelemetry::beginPhase(const std::string &name, Cycles target_now)
{
    FS_ASSERT(!inPhase, "sim-rate phase '%s' still open when '%s' began",
              open.name.c_str(), name.c_str());
    open = Phase{name, target_now, 0.0, target_now};
    openAt = std::chrono::steady_clock::now();
    inPhase = true;
}

void
SimRateTelemetry::endPhase(Cycles target_now)
{
    FS_ASSERT(inPhase, "endPhase() with no open phase");
    FS_ASSERT(target_now >= open.targetCycles,
              "sim-rate phase ended before it began");
    open.hostSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - openAt)
                           .count();
    open.targetCycles = target_now - open.targetCycles;
    done.push_back(open);
    inPhase = false;
}

std::string
SimRateTelemetry::report(double freq_ghz) const
{
    Table t({"Phase", "Target cycles", "Host s", "Tcycles/host-s",
             "Slowdown (x)"});
    for (const Phase &p : done) {
        double rate = p.cyclesPerHostSecond();
        // Slowdown: host seconds per target second at freq_ghz.
        double slowdown = rate > 0.0 ? freq_ghz * 1e9 / rate : 0.0;
        t.addRow({p.name, Table::fmt(p.targetCycles, 0),
                  Table::fmt(p.hostSeconds, 3),
                  Table::fmt(rate / 1e3, 1) + "k",
                  Table::fmt(slowdown, 1)});
    }
    return t.render();
}

} // namespace firesim
