/**
 * @file
 * Host-time profiling with Chrome trace_event JSON export.
 *
 * FireSim's "as fast as the hardware allows" goal is unmeasurable
 * without knowing where host time goes per simulation round. This file
 * provides:
 *
 *  - TraceEventSink: an append-only buffer of complete ("ph":"X")
 *    spans serialized as a chrome://tracing / Perfetto-loadable JSON
 *    document. Span names are interned once so recording a span is an
 *    O(1) append of plain data.
 *  - ScopedSpan: RAII timer emitting one span.
 *  - HostProfiler: a FabricObserver that times every fabric round and
 *    every endpoint advance() (switch ticks, blade ticks) into a sink.
 *  - SimRateTelemetry: per-phase target-cycles/host-second accounting,
 *    so simulation-rate regressions show up as numbers, not vibes.
 *
 * Everything here observes the host clock only; attaching a profiler
 * never changes target-visible state (tested in tests/telemetry).
 */

#ifndef FIRESIM_TELEMETRY_TRACE_EVENT_HH
#define FIRESIM_TELEMETRY_TRACE_EVENT_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/fabric.hh"

namespace firesim
{

class TraceEventSink
{
  public:
    explicit TraceEventSink(size_t max_events = 1 << 20);

    /** Intern @p name; the returned id is what complete() takes. */
    uint32_t intern(const std::string &name);

    /** Microseconds of host time since the sink was created. */
    double nowUs() const;

    /**
     * Record one complete span. @p category must be a string with
     * static storage duration ("fabric", "switch", "blade", "phase").
     * Spans beyond the event cap are counted and discarded.
     * Thread-safe: the host profiler records spans from the fabric's
     * worker threads when parallel execution is enabled.
     */
    void complete(uint32_t name_id, const char *category, double ts_us,
                  double dur_us, uint32_t tid = 0);

    size_t eventCount() const;
    uint64_t droppedEvents() const;

    /** The chrome://tracing document: {"traceEvents": [...], ...}. */
    std::string json() const;

    /** Write json() to @p path; false on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    struct Event
    {
        uint32_t name = 0;
        uint32_t tid = 0;
        const char *cat = "";
        double ts = 0;
        double dur = 0;
    };

    std::chrono::steady_clock::time_point epoch;
    // Guards names/events/dropped: complete() may be called
    // concurrently from fabric worker threads (json()/writeJson() are
    // post-run and take it too, for TSan cleanliness).
    mutable std::mutex mtx;
    std::vector<std::string> names;
    std::vector<Event> events;
    size_t maxEvents;
    uint64_t dropped = 0;
};

/** RAII span: times its own lifetime into a sink. */
class ScopedSpan
{
  public:
    ScopedSpan(TraceEventSink &sink, uint32_t name_id,
               const char *category, uint32_t tid = 0)
        : sink(&sink), name(name_id), cat(category), tid(tid),
          startUs(sink.nowUs())
    {}

    ~ScopedSpan()
    {
        sink->complete(name, cat, startUs, sink->nowUs() - startUs, tid);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceEventSink *sink;
    uint32_t name;
    const char *cat;
    uint32_t tid;
    double startUs;
};

/**
 * Times fabric rounds and per-endpoint advances into a TraceEventSink.
 * Rounds land on tid 0 as "fabric.round"; endpoint advances land on
 * tid endpoint_idx+1 under the name/category given by labelEndpoint()
 * (the Cluster labels switches "switch" and blades "blade").
 */
class HostProfiler : public FabricObserver
{
  public:
    explicit HostProfiler(TraceEventSink &sink);

    /** Name the span emitted for endpoint @p idx; @p category must
     *  have static storage duration. */
    void labelEndpoint(size_t idx, const std::string &name,
                       const char *category);

    /** Presizes the per-endpoint advance timers (see below). */
    void onAttach(TokenFabric &fabric) override;

    void onRoundStart(Cycles round_start, uint64_t round) override;
    void onRoundEnd(Cycles round_start, uint64_t round) override;
    void onAdvanceStart(size_t endpoint_idx, Cycles round_start) override;
    void onAdvanceEnd(size_t endpoint_idx, Cycles round_start) override;
    void onSliceStart(size_t endpoint_idx, int32_t slice,
                      Cycles round_start) override;
    void onSliceEnd(size_t endpoint_idx, int32_t slice,
                    Cycles round_start) override;

  private:
    struct EndpointLabel
    {
        uint32_t name = 0;
        const char *cat = "endpoint";
    };

    TraceEventSink &sink;
    uint32_t roundName;
    uint32_t defaultName;
    std::vector<EndpointLabel> labels;
    double roundT0 = 0;
    // One start-timestamp slot per endpoint, presized at attach time:
    // onAdvanceStart/onAdvanceEnd may run concurrently across endpoints
    // (fabric threading contract), but each endpoint's pair stays on
    // one thread, so disjoint slots need no locking.
    std::vector<double> advanceT0s;
    // Sliced endpoints get one slot per phase (begin + each slice),
    // flattened: endpoint i's slots start at sliceT0Base[i], the begin
    // phase (slice == kBeginSlice) maps to offset 0, slice s to s + 1.
    // Same disjoint-slot argument: one (endpoint, slice) pair stays on
    // one thread.
    std::vector<double> sliceT0s;
    std::vector<size_t> sliceT0Base;
};

/**
 * Target-cycles-per-host-second accounting, per named phase. Phases
 * must not nest; endPhase() closes the one beginPhase() opened.
 */
class SimRateTelemetry
{
  public:
    struct Phase
    {
        std::string name;
        Cycles targetCycles = 0;
        double hostSeconds = 0.0;
        /** Target cycle the phase began at — lets merged cross-shard
         *  traces align per-rank lanes on the simulated clock. */
        Cycles startCycle = 0;

        double
        cyclesPerHostSecond() const
        {
            return hostSeconds > 0.0
                       ? static_cast<double>(targetCycles) / hostSeconds
                       : 0.0;
        }
    };

    void beginPhase(const std::string &name, Cycles target_now);
    void endPhase(Cycles target_now);

    const std::vector<Phase> &phases() const { return done; }

    /**
     * Rendered report. @p freq_ghz converts cycle rate into the
     * paper's "simulation rate relative to target" (slowdown factor).
     */
    std::string report(double freq_ghz) const;

  private:
    std::vector<Phase> done;
    Phase open;
    std::chrono::steady_clock::time_point openAt;
    bool inPhase = false;
};

} // namespace firesim

#endif // FIRESIM_TELEMETRY_TRACE_EVENT_HH
