#include <gtest/gtest.h>

#include "apps/baremetal_stream.hh"
#include "apps/iperf.hh"
#include "apps/memcached.hh"
#include "apps/mutilate.hh"
#include "apps/ping.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/fabric.hh"

namespace firesim
{
namespace
{

TEST(PingApp, CollectsRequestedSamples)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    PingConfig pc;
    pc.dst = Cluster::ipFor(1);
    pc.count = 20;
    pc.interval = 16000;
    PingResult result;
    launchPing(cluster.node(0), pc, &result);
    cluster.runUs(4000.0);
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(result.rttCycles.count(), 20u);
    // All samples comfortably above the ideal network RTT.
    EXPECT_GT(result.rttCycles.min(), 4.0 * 6400.0 + 20.0);
}

TEST(PingApp, RttDistributionIsTight)
{
    // An unloaded cluster should produce near-constant RTTs.
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    PingConfig pc;
    pc.dst = Cluster::ipFor(1);
    pc.count = 30;
    PingResult result;
    launchPing(cluster.node(0), pc, &result);
    cluster.runUs(6000.0);
    ASSERT_TRUE(result.finished);
    double spread = result.rttCycles.max() - result.rttCycles.min();
    EXPECT_LT(spread, 10000.0); // < ~3 us of jitter
}

TEST(IperfApp, ThroughputIsStackBound)
{
    // Section IV-B: Linux-stack streaming lands around 1.4 Gbit/s, far
    // below the 200 Gbit/s line rate. Accept a band around the paper's
    // number; the precise series is produced by the benchmark.
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    IperfResult result;
    launchIperfServer(cluster.node(0), 5201, 4, &result);
    IperfConfig ic;
    ic.serverIp = Cluster::ipFor(0);
    ic.duration = 16000000; // 5 ms
    launchIperfClient(cluster.node(1), ic);
    cluster.runUs(6000.0);
    ASSERT_TRUE(result.serverSawTraffic);
    double gbps = result.gbps(3.2);
    EXPECT_GT(gbps, 0.7);
    EXPECT_LT(gbps, 3.0);
}

TEST(BareMetalApp, SingleNicDrivesAbout100Gbps)
{
    // Section IV-C: the bare-metal test pushes ~100 Gbit/s.
    BladeConfig a_cfg, b_cfg;
    a_cfg.name = "tx";
    a_cfg.mac = MacAddr(0xa);
    b_cfg.name = "rx";
    b_cfg.mac = MacAddr(0xb);
    ServerBlade tx(a_cfg), rx(b_cfg);
    TokenFabric fabric;
    fabric.addEndpoint(&tx);
    fabric.addEndpoint(&rx);
    fabric.connect(&tx, 0, &rx, 0, 6400);
    fabric.finalize();

    BareMetalTxConfig txc;
    txc.dstMac = MacAddr(0xb);
    txc.frames = 400;
    txc.frameBytes = 4096;
    BareMetalTxStats txs;
    BareMetalRxStats rxs;
    launchBareMetalReceiver(rx, 400, MacAddr(0xa), &rxs);
    launchBareMetalSender(tx, txc, &txs);
    fabric.run(3000000);

    EXPECT_EQ(rxs.framesReceived, 400u);
    EXPECT_EQ(rxs.corruptFrames, 0u);
    EXPECT_TRUE(txs.ackReceived);
    double gbps = rxs.gbps(3.2);
    EXPECT_GT(gbps, 80.0);
    EXPECT_LT(gbps, 115.0);
}

TEST(BareMetalApp, RateLimiterCapsStream)
{
    BladeConfig a_cfg, b_cfg;
    a_cfg.mac = MacAddr(0xa);
    b_cfg.mac = MacAddr(0xb);
    ServerBlade tx(a_cfg), rx(b_cfg);
    TokenFabric fabric;
    fabric.addEndpoint(&tx);
    fabric.addEndpoint(&rx);
    fabric.connect(&tx, 0, &rx, 0, 6400);
    fabric.finalize();

    BareMetalTxConfig txc;
    txc.dstMac = MacAddr(0xb);
    txc.frames = 200;
    txc.frameBytes = 4096;
    txc.rateK = 1;
    txc.rateP = 5; // ~41 Gbit/s of the 204.8 line rate
    BareMetalTxStats txs;
    BareMetalRxStats rxs;
    launchBareMetalReceiver(rx, 200, MacAddr(0xa), &rxs);
    launchBareMetalSender(tx, txc, &txs);
    fabric.run(6000000);

    ASSERT_EQ(rxs.framesReceived, 200u);
    double gbps = rxs.gbps(3.2);
    EXPECT_NEAR(gbps, 204.8 / 5.0, 4.0);
}

TEST(MemcachedApp, ServesGetsAndSets)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    MemcachedConfig mc;
    mc.threads = 2;
    auto server = std::make_unique<MemcachedServer>(cluster.node(0), mc);
    server->start();

    MutilateConfig lc;
    lc.serverIp = Cluster::ipFor(0);
    lc.serverThreads = 2;
    lc.qps = 20000.0;
    lc.connections = 2;
    auto client = std::make_unique<MutilateClient>(cluster.node(1), lc);
    client->start();

    cluster.runUs(5000.0); // 5 ms => ~100 requests at 20 kQPS
    EXPECT_GT(client->stats().completed, 50u);
    // Everything issued is served, modulo requests still in flight at
    // the simulation cutoff.
    EXPECT_GE(server->requestsServed() + 3, client->stats().issued);
    EXPECT_LE(server->requestsServed(), client->stats().issued);
    EXPECT_GT(client->stats().latencyCycles.count(), 50u);
    // Median latency: network RTT (~8 us) + stack (~25 us) + service.
    TargetClock clk;
    double p50 = clk.usFromCycles(
        static_cast<Cycles>(client->stats().latencyCycles.percentile(50)));
    EXPECT_GT(p50, 10.0);
    EXPECT_LT(p50, 200.0);
}

TEST(MutilateApp, AchievedQpsTracksTarget)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    MemcachedConfig mc;
    auto server = std::make_unique<MemcachedServer>(cluster.node(0), mc);
    server->start();

    MutilateConfig lc;
    lc.serverIp = Cluster::ipFor(0);
    lc.qps = 50000.0;
    lc.measureFrom = 3200000; // skip 1 ms of warmup
    auto client = std::make_unique<MutilateClient>(cluster.node(1), lc);
    client->start();

    cluster.runUs(10000.0);
    double achieved = client->stats().achievedQps(3.2);
    EXPECT_NEAR(achieved, 50000.0, 12000.0);
}

TEST(MutilateApp, OpenLoopKeepsIssuingUnderSlowServer)
{
    // Open-loop property: issuance does not slow down when the server
    // is slow; the backlog shows up as latency instead.
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    MemcachedConfig mc;
    mc.threads = 1;
    mc.serviceCycles = 320000; // 100 us service: server saturates
    auto server = std::make_unique<MemcachedServer>(cluster.node(0), mc);
    server->start();

    MutilateConfig lc;
    lc.serverIp = Cluster::ipFor(0);
    lc.serverThreads = 1;
    lc.qps = 30000.0; // ~3x the server's capacity
    auto client = std::make_unique<MutilateClient>(cluster.node(1), lc);
    client->start();

    cluster.runUs(5000.0);
    // Issued keeps pace with the open-loop schedule (~150 at 30 kQPS
    // over 5 ms) even though completions lag far behind.
    EXPECT_GT(client->stats().issued, 100u);
    EXPECT_LT(client->stats().completed, client->stats().issued);
}

} // namespace
} // namespace firesim
