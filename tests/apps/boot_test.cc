#include <gtest/gtest.h>

#include "apps/boot.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

TEST(BootWorkload, BootsAndPowersDown)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    BootConfig bc;
    bc.kernelSectors = 512;
    bc.fsMetadataSectors = 64;
    bc.initCyclesPerCore = 100000;
    BootResult result;
    launchBootWorkload(cluster.node(0), bc, &result);
    for (int i = 0; i < 200 && !result.poweredDown; ++i)
        cluster.runUs(1000.0);
    ASSERT_TRUE(result.poweredDown);
    EXPECT_GT(result.bootCycles, bc.initCyclesPerCore);
    // The image actually came off the block device.
    EXPECT_GE(cluster.node(0).blade().blockDevice().stats().reads.value(),
              (512u + 64u) / 256u);
}

TEST(BootWorkload, BiggerImageBootsSlower)
{
    auto boot_cycles = [](uint32_t kernel_sectors) {
        ClusterConfig cc;
        Cluster cluster(topologies::singleTor(1), cc);
        BootConfig bc;
        bc.kernelSectors = kernel_sectors;
        bc.fsMetadataSectors = 64;
        bc.initCyclesPerCore = 50000;
        BootResult result;
        launchBootWorkload(cluster.node(0), bc, &result);
        for (int i = 0; i < 500 && !result.poweredDown; ++i)
            cluster.runUs(1000.0);
        EXPECT_TRUE(result.poweredDown);
        return result.bootCycles;
    };
    EXPECT_GT(boot_cycles(4096), boot_cycles(512));
}

TEST(BootWorkload, AllCoresParticipate)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(1), cc);
    BootConfig bc;
    bc.kernelSectors = 256;
    bc.fsMetadataSectors = 64;
    bc.initCyclesPerCore = 400000;
    BootResult result;
    launchBootWorkload(cluster.node(0), bc, &result);
    for (int i = 0; i < 300 && !result.poweredDown; ++i)
        cluster.runUs(1000.0);
    ASSERT_TRUE(result.poweredDown);
    // 4 cores x initCyclesPerCore of CPU work happened...
    EXPECT_GE(cluster.node(0).os().busyCycles(), 4u * 400000u);
    // ...but the three secondary harts initialized in parallel: wall
    // time is loader + 2x init (boot core, then secondaries together),
    // comfortably below the serialized loader + 4x init (~2.4M cycles).
    EXPECT_LT(result.bootCycles, 2000000u);
}

} // namespace
} // namespace firesim
