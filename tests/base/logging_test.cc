#include <gtest/gtest.h>

#include "base/logging.hh"

namespace firesim
{
namespace
{

TEST(Logging, CsprintfFormatsLikePrintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(csprintf("%.3f", 1.5), "1.500");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Logging, CsprintfHandlesLongStrings)
{
    std::string big(5000, 'a');
    std::string out = csprintf("%s!", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 1);
    EXPECT_EQ(out.back(), '!');
}

TEST(Logging, SetLogLevelReturnsPrevious)
{
    LogLevel orig = setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(setLogLevel(LogLevel::Debug), LogLevel::Quiet);
    EXPECT_EQ(setLogLevel(orig), LogLevel::Debug);
    EXPECT_EQ(logLevel(), orig);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeath, AssertMacroFiresWithMessage)
{
    EXPECT_DEATH(FS_ASSERT(1 == 2, "value was %d", 3), "value was 3");
}

TEST(Logging, AssertMacroPassesSilently)
{
    FS_ASSERT(2 + 2 == 4, "math broke");
    SUCCEED();
}

} // namespace
} // namespace firesim
