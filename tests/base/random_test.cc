#include <gtest/gtest.h>

#include "base/random.hh"

namespace firesim
{
namespace
{

TEST(Random, SameSeedSameSequence)
{
    Random a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Random, ReseedRestartsStream)
{
    Random a(42);
    uint64_t first = a.next();
    a.next();
    a.reseed(42);
    EXPECT_EQ(a.next(), first);
}

TEST(Random, BelowStaysInBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Random, RangeIsInclusive)
{
    Random r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = r.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        hit_lo |= (v == 3);
        hit_hi |= (v == 6);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, ExponentialHasRequestedMean)
{
    Random r(13);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = r.exponential(250.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Random, ChanceMatchesProbability)
{
    Random r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace firesim
