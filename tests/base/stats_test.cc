#include <gtest/gtest.h>

#include "base/stats.hh"

namespace firesim
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, BasicMoments)
{
    Histogram h;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(Histogram, PercentilesOnKnownData)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(h.percentile(95), 95.05, 1e-9);
}

TEST(Histogram, PercentileUnaffectedBySampleOrder)
{
    Histogram a, b;
    for (int i = 0; i < 50; ++i)
        a.sample(i);
    for (int i = 49; i >= 0; --i)
        b.sample(i);
    for (double p : {10.0, 50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
}

TEST(Histogram, SamplingAfterQueryStillWorks)
{
    Histogram h;
    h.sample(10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    h.sample(20.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 20.0);
}

TEST(HistogramDeath, PercentileRangeChecked)
{
    Histogram h;
    h.sample(1.0);
    EXPECT_DEATH(h.percentile(101.0), "out of range");
    EXPECT_DEATH(h.percentileNearestRank(-1.0), "out of range");
}

TEST(Histogram, NearestRankReturnsObservedValues)
{
    // Regression for the doc/behaviour mismatch: percentile() openly
    // interpolates; percentileNearestRank() must return a sample that
    // actually occurred.
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(1), 1.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(100), 100.0);
    // And the interpolating variant still blends (p50 never occurred).
    EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
}

TEST(Histogram, NearestRankOnTinySets)
{
    Histogram h;
    h.sample(10.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(99), 10.0);
    h.sample(20.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(50), 10.0);
    EXPECT_DOUBLE_EQ(h.percentileNearestRank(51), 20.0);
}

TEST(HistogramReservoir, AggregatesStayExact)
{
    Histogram h;
    h.setReservoir(16, 7);
    double sum = 0.0;
    for (int i = 1; i <= 1000; ++i) {
        h.sample(static_cast<double>(i));
        sum += i;
    }
    // Memory is bounded...
    EXPECT_EQ(h.retained(), 16u);
    EXPECT_EQ(h.reservoirCap(), 16u);
    // ...but count/mean/min/max never degrade.
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    // Percentiles are approximate but must come from real samples.
    double p50 = h.percentileNearestRank(50);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 1000.0);
    EXPECT_DOUBLE_EQ(p50, std::floor(p50));
}

TEST(HistogramReservoir, DeterministicAcrossRuns)
{
    Histogram a, b;
    a.setReservoir(8, 99);
    b.setReservoir(8, 99);
    for (int i = 0; i < 500; ++i) {
        a.sample(static_cast<double>(i * 3 % 101));
        b.sample(static_cast<double>(i * 3 % 101));
    }
    // Same seed, same stream: identical retained sets.
    EXPECT_EQ(a.samples(), b.samples());
    for (double p : {10.0, 50.0, 90.0})
        EXPECT_DOUBLE_EQ(a.percentileNearestRank(p),
                         b.percentileNearestRank(p));
}

TEST(HistogramReservoir, ResetRestoresExactMode)
{
    Histogram h;
    h.setReservoir(4, 1);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    // After reset the reservoir can be re-armed (no samples yet).
    h.setReservoir(4, 1);
    h.sample(5.0);
    EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramReservoirDeath, MisuseIsFatal)
{
    Histogram h;
    EXPECT_DEATH(h.setReservoir(0, 1), "nonzero");
    Histogram h2;
    h2.sample(1.0);
    EXPECT_DEATH(h2.setReservoir(8, 1), "after");
}

TEST(RunningStat, TracksWithoutRetainingSamples)
{
    RunningStat s;
    for (double v : {5.0, 15.0, 10.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 15.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

} // namespace
} // namespace firesim
