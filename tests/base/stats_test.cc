#include <gtest/gtest.h>

#include "base/stats.hh"

namespace firesim
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, BasicMoments)
{
    Histogram h;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(Histogram, PercentilesOnKnownData)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(h.percentile(95), 95.05, 1e-9);
}

TEST(Histogram, PercentileUnaffectedBySampleOrder)
{
    Histogram a, b;
    for (int i = 0; i < 50; ++i)
        a.sample(i);
    for (int i = 49; i >= 0; --i)
        b.sample(i);
    for (double p : {10.0, 50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
}

TEST(Histogram, SamplingAfterQueryStillWorks)
{
    Histogram h;
    h.sample(10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    h.sample(20.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 20.0);
}

TEST(HistogramDeath, PercentileRangeChecked)
{
    Histogram h;
    h.sample(1.0);
    EXPECT_DEATH(h.percentile(101.0), "out of range");
}

TEST(RunningStat, TracksWithoutRetainingSamples)
{
    RunningStat s;
    for (double v : {5.0, 15.0, 10.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 15.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

} // namespace
} // namespace firesim
