#include <gtest/gtest.h>

#include "base/table.hh"

namespace firesim
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "qps"});
    t.addRow({"cross-tor", "4691888"});
    t.addRow({"cross-agg", "4492745"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("cross-tor"), std::string::npos);
    EXPECT_NE(out.find("4492745"), std::string::npos);
    // header, separator, two rows
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAreAligned)
{
    Table t({"a", "long-header"});
    t.addRow({"wide-cell-content", "1"});
    std::string out = t.render();
    size_t first_nl = out.find('\n');
    size_t second_nl = out.find('\n', first_nl + 1);
    size_t third_nl = out.find('\n', second_nl + 1);
    std::string header = out.substr(0, first_nl);
    std::string row = out.substr(second_nl + 1, third_nl - second_nl - 1);
    // The second column starts at the same offset in header and row.
    EXPECT_EQ(header.find("long-header"), row.find("1"));
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmt(1.5, 3), "1.500");
}

TEST(TableDeath, RowArityChecked)
{
    Table t({"x", "y"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "cells");
}

TEST(TableDeath, EmptyHeaderRejected)
{
    EXPECT_EXIT(Table({}), ::testing::ExitedWithCode(1), "column");
}

} // namespace
} // namespace firesim
