/**
 * @file
 * ThreadPool unit tests: every item runs exactly once, results are
 * visible after the barrier, pools are reusable across batches, and
 * the width-1 pool degenerates to inline execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"

namespace firesim
{
namespace
{

TEST(ThreadPool, HardwareWidthIsNeverZero)
{
    EXPECT_GE(ThreadPool::hardwareWidth(), 1u);
}

TEST(ThreadPool, WidthOnePoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.width(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(16);
    pool.parallelFor(ran.size(),
                     [&](size_t i) { ran[i] = std::this_thread::get_id(); });
    for (const auto &id : ran)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EveryItemRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.width(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BarrierPublishesWorkerWrites)
{
    // Plain (non-atomic) writes by workers must be visible to the
    // caller after parallelFor returns: the round barrier is what lets
    // the fabric's commit phase read advance() results without locks.
    ThreadPool pool(8);
    std::vector<uint64_t> out(4096, 0);
    pool.parallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossManyBatches)
{
    ThreadPool pool(3);
    std::vector<uint64_t> acc(64, 0);
    for (int round = 0; round < 200; ++round)
        pool.parallelFor(acc.size(), [&](size_t i) { acc[i] += i; });
    for (size_t i = 0; i < acc.size(); ++i)
        EXPECT_EQ(acc[i], 200 * i);
}

TEST(ThreadPool, EmptyAndSingleItemBatches)
{
    ThreadPool pool(4);
    int ran = 0;
    pool.parallelFor(0, [&](size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, MoreItemsThanThreadsBalances)
{
    // Dynamic claiming: with wildly uneven item costs, no item is lost
    // and the total matches (the fabric's switch-vs-blade imbalance).
    ThreadPool pool(4);
    std::atomic<uint64_t> total{0};
    pool.parallelFor(257, [&](size_t i) {
        uint64_t burn = (i % 7 == 0) ? 20000 : 10;
        volatile uint64_t x = 0;
        for (uint64_t k = 0; k < burn; ++k)
            x = x + k;
        total += i;
    });
    EXPECT_EQ(total.load(), 257ull * 256ull / 2ull);
}

TEST(ThreadPoolDeath, WidthZeroRejected)
{
    EXPECT_EXIT(ThreadPool(0), ::testing::ExitedWithCode(1),
                "width must be at least 1");
}

} // namespace
} // namespace firesim
