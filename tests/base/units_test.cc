#include <gtest/gtest.h>

#include "base/units.hh"

namespace firesim
{
namespace
{

TEST(Units, DefaultClockIsPaperFrequency)
{
    TargetClock clk;
    EXPECT_DOUBLE_EQ(clk.frequencyGhz(), 3.2);
}

TEST(Units, CyclesFromTime)
{
    TargetClock clk(3.2);
    // 2 us at 3.2 GHz = 6400 cycles (the paper's standard link latency).
    EXPECT_EQ(clk.cyclesFromUs(2.0), 6400u);
    EXPECT_EQ(clk.cyclesFromNs(1.0), 3u); // 3.2 rounded
    EXPECT_EQ(clk.cyclesFromNs(0.0), 0u);
}

TEST(Units, TimeFromCycles)
{
    TargetClock clk(3.2);
    EXPECT_DOUBLE_EQ(clk.usFromCycles(6400), 2.0);
    EXPECT_NEAR(clk.nsFromCycles(32), 10.0, 1e-9);
}

TEST(Units, RoundTripIsStable)
{
    TargetClock clk(3.2);
    for (double us : {0.5, 1.0, 2.0, 5.0, 10.0, 100.0}) {
        Cycles c = clk.cyclesFromUs(us);
        EXPECT_NEAR(clk.usFromCycles(c), us, 1e-3) << "us=" << us;
    }
}

TEST(Units, BitsPerCycleMatchesPaperTokenWidth)
{
    TargetClock clk(3.2);
    // 200 Gbit/s at 3.2 GHz = 62.5 bits per cycle; the paper sizes the
    // token payload at 64 bits to cover it.
    EXPECT_DOUBLE_EQ(clk.bitsPerCycle(200.0), 62.5);
    EXPECT_LE(clk.bitsPerCycle(200.0), 64.0);
}

TEST(UnitsDeath, NonPositiveFrequencyIsFatal)
{
    EXPECT_EXIT(TargetClock(-1.0), ::testing::ExitedWithCode(1),
                "frequency");
}

TEST(Units, ByteSuffixes)
{
    EXPECT_EQ(16 * KiB, 16384u);
    EXPECT_EQ(MiB, 1048576u);
    EXPECT_EQ(16 * GiB, 17179869184ull);
}

} // namespace
} // namespace firesim
