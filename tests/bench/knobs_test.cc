/**
 * @file
 * Death tests for the bench knob parsers (bench/common.hh): the
 * documented contract is strict — no leading whitespace (strtoul
 * would silently skip it), no signs, no trailing junk — on both the
 * --flag and the FIRESIM_* environment paths, which share the parser.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/common.hh"

namespace firesim
{
namespace
{

using bench::parseCommonFlags;
using bench::parseShardConnectKnob;
using bench::parseUnsignedKnob;

/** Run parseCommonFlags on a single fake argv flag. */
void
parseOneFlag(const char *flag)
{
    const char *argv[] = {"bench", flag};
    parseCommonFlags(2, const_cast<char **>(argv));
}

TEST(KnobParse, AcceptsStrictDecimal)
{
    EXPECT_EQ(parseUnsignedKnob("t", "0"), 0u);
    EXPECT_EQ(parseUnsignedKnob("t", "8"), 8u);
    EXPECT_EQ(parseUnsignedKnob("t", "+3"), 3u);
    EXPECT_EQ(parseUnsignedKnob("t", "4294967295"), 4294967295u);
}

TEST(KnobParseDeath, RejectsMalformedValues)
{
    EXPECT_EXIT(parseUnsignedKnob("t", ""),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "abc"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "-3"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "3x"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "+"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "4294967296"),
                ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(KnobParseDeath, RejectsLeadingWhitespace)
{
    // strtoul skips leading whitespace, so " 8" used to parse as 8 in
    // violation of the strict contract. All whitespace shapes die now.
    EXPECT_EXIT(parseUnsignedKnob("t", " 8"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "\t8"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", " +8"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseUnsignedKnob("t", "8 "),
                ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(KnobParseDeath, EnvPathSharesTheStrictParser)
{
    // The FIRESIM_* environment variables funnel through the same
    // parser; a whitespace-polluted env var must die, not truncate.
    EXPECT_EXIT(
        {
            setenv("FIRESIM_PARALLEL_HOSTS", " 8", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_PARALLEL_HOSTS");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_SHARDS", "2x", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_SHARDS");
}

TEST(KnobParseDeath, FlagPathRejectsWhitespace)
{
    EXPECT_EXIT(parseOneFlag("--parallel-hosts= 8"),
                ::testing::ExitedWithCode(2), "--parallel-hosts");
    EXPECT_EXIT(parseOneFlag("--shard-rank=1 "),
                ::testing::ExitedWithCode(2), "--shard-rank");
}

TEST(KnobParseDeath, ShardConnectDemandsHostColonPort)
{
    EXPECT_EXIT(parseShardConnectKnob("--shard-connect", "nohost"),
                ::testing::ExitedWithCode(2), "HOST:PORT");
    EXPECT_EXIT(parseShardConnectKnob("--shard-connect", ":9000"),
                ::testing::ExitedWithCode(2), "HOST:PORT");
    EXPECT_EXIT(parseShardConnectKnob("--shard-connect", "a:b:c"),
                ::testing::ExitedWithCode(2), "HOST:PORT");
    EXPECT_EXIT(parseShardConnectKnob("--shard-connect", "h:port"),
                ::testing::ExitedWithCode(2), "non-negative integer");
    EXPECT_EXIT(parseShardConnectKnob("--shard-connect", "h:0"),
                ::testing::ExitedWithCode(2), "1, 65535");
    EXPECT_EXIT(parseShardConnectKnob("--shard-connect", "h:70000"),
                ::testing::ExitedWithCode(2), "1, 65535");
}

TEST(KnobParseDeath, ShardFlagCrossValidation)
{
    // IIFEs: EXPECT_EXIT is a macro, so brace-initializer commas in a
    // plain compound statement would split into macro arguments.
    EXPECT_EXIT(
        ([] {
            const char *argv[] = {"bench", "--shards=2",
                                  "--shard-rank=2",
                                  "--shard-connect=h:9000"};
            parseCommonFlags(4, const_cast<char **>(argv));
        }()),
        ::testing::ExitedWithCode(2), "out of range");
    EXPECT_EXIT(
        ([] {
            // The parser state is process-global; make sure no earlier
            // test's --shard-connect satisfies the check in this child.
            bench::shardBasePortRef() = 0;
            const char *argv[] = {"bench", "--shards=2"};
            parseCommonFlags(2, const_cast<char **>(argv));
        }()),
        ::testing::ExitedWithCode(2), "needs --shard-connect");
    EXPECT_EXIT(parseOneFlag("--shards=0"),
                ::testing::ExitedWithCode(2), "at least 1");
}

TEST(KnobParse, ShardConnectRoundTrips)
{
    parseShardConnectKnob("--shard-connect", "10.1.2.3:9000");
    EXPECT_EQ(bench::shardConnectHostRef(), "10.1.2.3");
    EXPECT_EQ(bench::shardBasePortRef(), 9000u);
}

TEST(KnobParse, ShardTransportRoundTrips)
{
    EXPECT_EQ(bench::shardTransportRef(), TransportKind::Auto);
    parseOneFlag("--shard-transport=shm");
    EXPECT_EQ(bench::shardTransportRef(), TransportKind::Shm);
    parseOneFlag("--shard-transport=tcp");
    EXPECT_EQ(bench::shardTransportRef(), TransportKind::Tcp);
    parseOneFlag("--shard-transport=unix");
    EXPECT_EQ(bench::shardTransportRef(), TransportKind::Unix);
    parseOneFlag("--shard-transport=auto");
    EXPECT_EQ(bench::shardTransportRef(), TransportKind::Auto);
    parseOneFlag("--shard-shm-ring=65536");
    EXPECT_EQ(bench::shardShmRingRef(), 65536u);
}

TEST(KnobParseDeath, ShardTransportIsStrict)
{
    EXPECT_EXIT(parseOneFlag("--shard-transport=SHM"),
                ::testing::ExitedWithCode(2), "auto, shm, tcp, or unix");
    EXPECT_EXIT(parseOneFlag("--shard-transport=pcie"),
                ::testing::ExitedWithCode(2), "--shard-transport");
    EXPECT_EXIT(parseOneFlag("--shard-transport="),
                ::testing::ExitedWithCode(2), "--shard-transport");
    // loopback is a real TransportKind but test-only: the knob parser
    // must not accept it from the command line.
    EXPECT_EXIT(parseOneFlag("--shard-transport=loopback"),
                ::testing::ExitedWithCode(2), "--shard-transport");
    EXPECT_EXIT(parseOneFlag("--shard-shm-ring=1M"),
                ::testing::ExitedWithCode(2), "--shard-shm-ring");
    EXPECT_EXIT(parseOneFlag("--shard-shm-ring=0"),
                ::testing::ExitedWithCode(2), "at least 1");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_SHARD_TRANSPORT", "fast", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_SHARD_TRANSPORT");
}

TEST(KnobParse, ShardPolicyAndProfileFlagsRoundTrip)
{
    EXPECT_EQ(bench::shardPolicyIdRef(), 0u) << "block is the default";
    parseOneFlag("--shard-policy=cost");
    EXPECT_EQ(bench::shardPolicyIdRef(), 1u);
    parseOneFlag("--shard-policy=block");
    EXPECT_EQ(bench::shardPolicyIdRef(), 0u);
    parseOneFlag("--shard-profile-in=/tmp/fs.prof");
    EXPECT_EQ(bench::shardProfileInRef(), "/tmp/fs.prof");
    parseOneFlag("--shard-profile-out=/tmp/fs-out.prof");
    EXPECT_EQ(bench::shardProfileOutRef(), "/tmp/fs-out.prof");
}

TEST(KnobParseDeath, ShardPolicyIsStrict)
{
    EXPECT_EXIT(parseOneFlag("--shard-policy=greedy"),
                ::testing::ExitedWithCode(2), "block or cost");
    EXPECT_EXIT(parseOneFlag("--shard-policy="),
                ::testing::ExitedWithCode(2), "--shard-policy");
    EXPECT_EXIT(parseOneFlag("--shard-policy=Cost"),
                ::testing::ExitedWithCode(2), "block or cost");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_SHARD_POLICY", "roundrobin", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_SHARD_POLICY");
}

TEST(KnobParse, StragglerAlphaRoundTrips)
{
    EXPECT_DOUBLE_EQ(bench::stragglerAlphaRef(), 0.2)
        << "the monitor's default EWMA weight";
    parseOneFlag("--straggler-alpha=0.5");
    EXPECT_DOUBLE_EQ(bench::stragglerAlphaRef(), 0.5);
    parseOneFlag("--straggler-alpha=1.0");
    EXPECT_DOUBLE_EQ(bench::stragglerAlphaRef(), 1.0);
    parseOneFlag("--straggler-alpha=.25");
    EXPECT_DOUBLE_EQ(bench::stragglerAlphaRef(), 0.25);
}

TEST(KnobParseDeath, StragglerAlphaDemandsUnitInterval)
{
    // The monitor folds alpha into a /256 fixed-point weight whose
    // complement underflows outside (0, 1]; the knob rejects those
    // values outright rather than silently clamping.
    EXPECT_EXIT(parseOneFlag("--straggler-alpha=0"),
                ::testing::ExitedWithCode(2), "value in");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha=0.0"),
                ::testing::ExitedWithCode(2), "value in");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha=1.5"),
                ::testing::ExitedWithCode(2), "value in");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha=-0.2"),
                ::testing::ExitedWithCode(2), "--straggler-alpha");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha=fast"),
                ::testing::ExitedWithCode(2), "--straggler-alpha");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha= 0.5"),
                ::testing::ExitedWithCode(2), "--straggler-alpha");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha=0.5x"),
                ::testing::ExitedWithCode(2), "--straggler-alpha");
    EXPECT_EXIT(parseOneFlag("--straggler-alpha="),
                ::testing::ExitedWithCode(2), "--straggler-alpha");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_STRAGGLER_ALPHA", "2.0", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_STRAGGLER_ALPHA");
}

TEST(KnobParse, ObservabilityFlagsRoundTrip)
{
    parseOneFlag("--heartbeat-every=64");
    EXPECT_EQ(bench::heartbeatEveryRef(), 64u);
    parseOneFlag("--status-interval=10");
    EXPECT_EQ(bench::statusIntervalRef(), 10u);
    parseOneFlag("--metrics-file=/tmp/fs.prom");
    EXPECT_EQ(bench::metricsFileRef(), "/tmp/fs.prom");
    parseOneFlag("--flight-recorder-depth=1024");
    EXPECT_EQ(bench::flightRecorderDepthRef(), 1024u);
    // The bare switch must not be shadowed by its =N-suffixed sibling
    // (both start with "--flight-recorder").
    EXPECT_FALSE(bench::flightRecorderRef());
    parseOneFlag("--flight-recorder");
    EXPECT_TRUE(bench::flightRecorderRef());
    EXPECT_EQ(bench::flightRecorderDepthRef(), 1024u);
}

TEST(KnobParseDeath, ObservabilityFlagsShareTheStrictParser)
{
    EXPECT_EXIT(parseOneFlag("--heartbeat-every=8x"),
                ::testing::ExitedWithCode(2), "--heartbeat-every");
    EXPECT_EXIT(parseOneFlag("--status-interval= 5"),
                ::testing::ExitedWithCode(2), "--status-interval");
    EXPECT_EXIT(parseOneFlag("--flight-recorder-depth=abc"),
                ::testing::ExitedWithCode(2),
                "--flight-recorder-depth");
    // Depth 0 parses but fails cross-validation: a zero-slot ring
    // records nothing and the FlightRecorder refuses to build one.
    EXPECT_EXIT(parseOneFlag("--flight-recorder-depth=0"),
                ::testing::ExitedWithCode(2), "at least 1");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_HEARTBEAT_EVERY", "1h", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_HEARTBEAT_EVERY");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_FLIGHT_RECORDER_DEPTH", "-1", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_FLIGHT_RECORDER_DEPTH");
}

TEST(KnobParse, DecodeCacheFlagsRoundTrip)
{
    // Default: on, 32Ki entries.
    EXPECT_TRUE(bench::decodeCacheRef());
    parseOneFlag("--decode-cache=off");
    EXPECT_FALSE(bench::decodeCacheRef());
    parseOneFlag("--decode-cache=on");
    EXPECT_TRUE(bench::decodeCacheRef());
    // The =N-suffixed sibling must not be swallowed by the shorter
    // prefix (both start with "--decode-cache").
    parseOneFlag("--decode-cache-entries=4096");
    EXPECT_EQ(bench::decodeCacheEntriesRef(), 4096u);
    EXPECT_TRUE(bench::decodeCacheRef());
}

TEST(KnobParseDeath, DecodeCacheFlagIsStrictOnOff)
{
    EXPECT_EXIT(parseOneFlag("--decode-cache=1"),
                ::testing::ExitedWithCode(2), "on or off");
    EXPECT_EXIT(parseOneFlag("--decode-cache=ON"),
                ::testing::ExitedWithCode(2), "on or off");
    EXPECT_EXIT(parseOneFlag("--decode-cache="),
                ::testing::ExitedWithCode(2), "on or off");
    EXPECT_EXIT(parseOneFlag("--decode-cache= on"),
                ::testing::ExitedWithCode(2), "on or off");
    EXPECT_EXIT(parseOneFlag("--decode-cache=off "),
                ::testing::ExitedWithCode(2), "on or off");
}

TEST(KnobParseDeath, DecodeCacheEntriesShareTheStrictParser)
{
    EXPECT_EXIT(parseOneFlag("--decode-cache-entries=-1"),
                ::testing::ExitedWithCode(2), "--decode-cache-entries");
    EXPECT_EXIT(parseOneFlag("--decode-cache-entries=abc"),
                ::testing::ExitedWithCode(2), "--decode-cache-entries");
    EXPECT_EXIT(parseOneFlag("--decode-cache-entries= 8"),
                ::testing::ExitedWithCode(2), "--decode-cache-entries");
    EXPECT_EXIT(parseOneFlag("--decode-cache-entries=8 "),
                ::testing::ExitedWithCode(2), "--decode-cache-entries");
    // 0 parses but fails cross-validation: a zero-entry cache can
    // serve nothing.
    EXPECT_EXIT(parseOneFlag("--decode-cache-entries=0"),
                ::testing::ExitedWithCode(2), "at least 1");
}

TEST(KnobParseDeath, DecodeCacheEnvPathIsStrictToo)
{
    EXPECT_EXIT(
        {
            setenv("FIRESIM_DECODE_CACHE", "true", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_DECODE_CACHE");
    EXPECT_EXIT(
        {
            setenv("FIRESIM_DECODE_CACHE_ENTRIES", "64k", 1);
            parseCommonFlags(0, nullptr);
        },
        ::testing::ExitedWithCode(2), "FIRESIM_DECODE_CACHE_ENTRIES");
}

TEST(KnobParse, DecodeCacheFlagOverridesEnv)
{
    // Flags win over the environment, same as every other knob.
    setenv("FIRESIM_DECODE_CACHE", "off", 1);
    parseOneFlag("--decode-cache=on");
    EXPECT_TRUE(bench::decodeCacheRef());
    unsetenv("FIRESIM_DECODE_CACHE");
}

} // namespace
} // namespace firesim
