#include <gtest/gtest.h>

#include "blockdev/blockdev.hh"

namespace firesim
{
namespace
{

struct BlockDevFixture : public ::testing::Test
{
    BlockDevFixture() : mem(16 * MiB) {}

    void
    boot(BlockDevConfig cfg = BlockDevConfig{})
    {
        dev = std::make_unique<BlockDevice>(cfg, eq, mem);
    }

    EventQueue eq;
    FunctionalMemory mem;
    std::unique_ptr<BlockDevice> dev;
};

TEST_F(BlockDevFixture, WriteThenReadRoundTrip)
{
    boot();
    std::vector<uint8_t> data(2 * kSectorBytes);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 3);
    mem.write(0x1000, data.data(), data.size());

    auto wid = dev->request(true, 0x1000, 10, 2);
    ASSERT_TRUE(wid.has_value());
    eq.drain();
    EXPECT_EQ(dev->popCompletion(), wid);

    auto rid = dev->request(false, 0x9000, 10, 2);
    ASSERT_TRUE(rid.has_value());
    eq.drain();
    EXPECT_EQ(dev->popCompletion(), rid);

    std::vector<uint8_t> out(data.size());
    mem.read(0x9000, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(dev->stats().writes.value(), 1u);
    EXPECT_EQ(dev->stats().reads.value(), 1u);
    EXPECT_EQ(dev->stats().sectorsMoved.value(), 4u);
}

TEST_F(BlockDevFixture, UnalignedMemoryAddressesAllowed)
{
    boot();
    std::vector<uint8_t> data(kSectorBytes, 0x77);
    mem.write(0x1003, data.data(), data.size()); // unaligned in memory
    auto id = dev->request(true, 0x1003, 0, 1);
    ASSERT_TRUE(id.has_value());
    eq.drain();
    std::vector<uint8_t> out(kSectorBytes);
    dev->readImage(0, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(BlockDevFixture, TrackersAllowConcurrency)
{
    BlockDevConfig cfg;
    cfg.trackers = 2;
    boot(cfg);
    auto a = dev->request(false, 0x1000, 0, 1);
    auto b = dev->request(false, 0x2000, 1, 1);
    auto c = dev->request(false, 0x3000, 2, 1);
    EXPECT_TRUE(a.has_value());
    EXPECT_TRUE(b.has_value());
    EXPECT_NE(a, b);
    EXPECT_FALSE(c.has_value()); // both trackers busy
    eq.drain();
    EXPECT_TRUE(dev->popCompletion().has_value());
    EXPECT_TRUE(dev->popCompletion().has_value());
    EXPECT_FALSE(dev->popCompletion().has_value());
}

TEST_F(BlockDevFixture, LatencyScalesWithProfile)
{
    BlockDevConfig ssd;
    ssd.timing = StorageTimingProfile::ssd();
    boot(ssd);
    dev->request(false, 0x1000, 0, 1);
    Cycles ssd_done = eq.drain();

    EventQueue eq2;
    BlockDevConfig disk;
    disk.timing = StorageTimingProfile::disk();
    BlockDevice slow(disk, eq2, mem);
    slow.request(false, 0x1000, 0, 1);
    Cycles disk_done = eq2.drain();

    EXPECT_GT(disk_done, 10 * ssd_done);
}

TEST_F(BlockDevFixture, XpointFasterThanSsd)
{
    EXPECT_LT(StorageTimingProfile::xpoint().accessLatency,
              StorageTimingProfile::ssd().accessLatency);
    EXPECT_GT(StorageTimingProfile::xpoint().bytesPerCycle,
              StorageTimingProfile::ssd().bytesPerCycle);
}

TEST_F(BlockDevFixture, InterruptFiresOnCompletion)
{
    boot();
    int irq = 0;
    dev->setInterruptHandler([&] { ++irq; });
    dev->request(false, 0x1000, 0, 1);
    eq.drain();
    EXPECT_EQ(irq, 1);
}

TEST_F(BlockDevFixture, ImageAccessors)
{
    boot();
    std::vector<uint8_t> img(1024, 0x42);
    dev->writeImage(5, img.data(), img.size());
    std::vector<uint8_t> out(1024);
    dev->readImage(5, out.data(), out.size());
    EXPECT_EQ(out, img);
}

TEST_F(BlockDevFixture, OutOfRangeTransferIsFatal)
{
    BlockDevConfig cfg;
    cfg.sectors = 100;
    boot(cfg);
    EXPECT_EXIT(dev->request(false, 0x1000, 99, 2),
                ::testing::ExitedWithCode(1), "beyond device end");
}

TEST_F(BlockDevFixture, ZeroLengthTransferIsFatal)
{
    boot();
    EXPECT_EXIT(dev->request(false, 0x1000, 0, 0),
                ::testing::ExitedWithCode(1), "zero-length");
}

} // namespace
} // namespace firesim
