/**
 * @file
 * End-to-end decode-cache parity: whole-cluster runs with the fast
 * path on and off must produce byte-identical telemetry dumps (after
 * stripping host-timing stats, which legitimately differ between any
 * two host executions) and identical hart consoles — for the Fig. 5
 * style single-process ping cluster AND a two-shard distributed run
 * whose merged cross-shard stats must also match.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "manager/checkpoint.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/remote/socket.hh"
#include "riscv/assembler.hh"
#include "riscv/decode_cache.hh"

namespace firesim
{
namespace
{

using namespace regs;

ClusterConfig
parityConfig(bool decode_cache)
{
    ClusterConfig cc;
    cc.linkLatency = 400;
    cc.switchLatency = 10;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 2000;
    cc.telemetry.aggregateEvery = 8; // live merged dumps on rank 0
    cc.harts = 1;
    cc.hart.decodeCache = decode_cache;
    return cc;
}

/** A hart workload exercising ALU/mul/load/store timing, UART MMIO,
 *  and a final halt. Varies per node so the two blades' stat subtrees
 *  are distinguishable. */
void
armHart(NodeSystem &node, uint64_t node_idx)
{
    Assembler a(node.blade().memory(), memmap::kDramBase);
    a.li(s0, static_cast<int64_t>(memmap::kDramBase + 1 * MiB));
    a.li(t1, static_cast<int64_t>(memmap::kUartTx));
    a.li(t0, static_cast<int64_t>(400 + 37 * node_idx));
    a.li(a0, 1);
    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    a.addi(a0, a0, 3);
    a.sd(a0, s0, 0);
    a.ld(a1, s0, 8 * static_cast<int32_t>(node_idx));
    a.mul(a2, a0, t0);
    a.xor_(a0, a0, a2);
    a.addi(t0, t0, -1);
    a.bne(t0, zero, loop);
    for (char c : std::string("hart-done")) {
        a.li(t2, c);
        a.sb(t2, t1, 0);
    }
    a.halt(a0);
    a.finalize();
    node.blade().hart(0).reset(memmap::kDramBase);
}

void
spawnPing(NodeSystem &from, size_t to_index, Cycles *rtt_out)
{
    from.os().spawn("ping", -1, [&from, to_index, rtt_out]() -> Task<> {
        *rtt_out = co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

struct SingleRun
{
    std::string strippedStats;
    std::vector<std::string> consoles;
    std::vector<uint64_t> exitCodes;
    Cycles rtt = 0;
    uint64_t decodeHits = 0;
};

SingleRun
runSingleProcess(bool decode_cache)
{
    SingleRun out;
    Cluster c(topologies::singleTor(2), parityConfig(decode_cache));
    for (size_t i = 0; i < c.nodeCount(); ++i)
        armHart(c.node(i), i);
    spawnPing(c.node(0), 1, &out.rtt);
    c.run(600000);
    for (size_t i = 0; i < c.nodeCount(); ++i) {
        RocketCore &hart = c.node(i).blade().hart(0);
        EXPECT_TRUE(hart.halted()) << "node " << i;
        out.consoles.push_back(hart.console());
        out.exitCodes.push_back(hart.exitCode());
        if (const DecodeCacheStats *ds = hart.decodeStats())
            out.decodeHits += ds->hits;
    }
    out.strippedStats = stripHostTimingStats(
        c.telemetry()->registry().dumpJson(c.now()));
    return out;
}

TEST(DecodeParity, SingleProcessPingClusterByteIdentical)
{
    SingleRun on = runSingleProcess(true);
    SingleRun off = runSingleProcess(false);

    ASSERT_GT(on.rtt, 0u) << "ping never completed";
    EXPECT_EQ(on.rtt, off.rtt);
    EXPECT_EQ(on.consoles, off.consoles);
    EXPECT_EQ(on.exitCodes, off.exitCodes);
    for (const std::string &con : on.consoles)
        EXPECT_EQ(con, "hart-done");

    // The headline claim: after stripping host-timing entries (which
    // include the decode cache's own hit/miss counters) the two dumps
    // are byte for byte the same.
    EXPECT_EQ(on.strippedStats, off.strippedStats);

    // And the fast path really ran: the loop body re-executes hundreds
    // of times, so hits must dominate.
    EXPECT_GT(on.decodeHits, 1000u);
    EXPECT_EQ(off.decodeHits, 0u);

    // The unstripped decode stats ARE registered (observability), just
    // excluded from parity: the raw on-dump mentions them.
    Cluster c(topologies::singleTor(2), parityConfig(true));
    std::string raw = c.telemetry()->registry().dumpJson(0);
    EXPECT_NE(raw.find(".host.decode.hits"), std::string::npos);
    EXPECT_EQ(stripHostTimingStats(raw).find(".host.decode."),
              std::string::npos);
}

struct ShardRun
{
    std::string stripped0, stripped1, merged;
    std::string console0, console1;
    Cycles rtt = 0;
};

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + name;
    mkdir(dir.c_str(), 0755);
    return dir;
}

ShardRun
runTwoShards(bool decode_cache)
{
    ShardRun out;
    auto [fd0, fd1] = localSocketPair();
    ClusterConfig cc0 = parityConfig(decode_cache);
    ClusterConfig cc1 = parityConfig(decode_cache);
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    // Rank 0 only builds its cross-shard aggregator when it has
    // somewhere to dump the merged view.
    const char *mode = decode_cache ? "on" : "off";
    cc0.telemetry.dumpDir = freshDir(std::string("fsdecode_r0_") + mode);
    cc1.telemetry.dumpDir = freshDir(std::string("fsdecode_r1_") + mode);
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    std::thread shard1([&] {
        // Rank 1 owns global node 1 as local 0.
        Cluster c1(topologies::singleTor(2), std::move(cc1),
                   std::move(fds1));
        armHart(c1.node(0), 1);
        c1.run(600000);
        out.console1 = c1.node(0).blade().hart(0).console();
        out.stripped1 = stripHostTimingStats(
            c1.telemetry()->registry().dumpJson(c1.now()));
    });
    {
        Cluster c0(topologies::singleTor(2), std::move(cc0),
                   std::move(fds0));
        armHart(c0.node(0), 0);
        spawnPing(c0.node(0), 1, &out.rtt);
        c0.run(600000);
        out.console0 = c0.node(0).blade().hart(0).console();
        out.stripped0 = stripHostTimingStats(
            c0.telemetry()->registry().dumpJson(c0.now()));
        if (c0.aggregator())
            out.merged = stripHostTimingStats(c0.aggregator()->mergedJson());
    }
    shard1.join();
    return out;
}

TEST(DecodeParity, TwoShardDistributedRunByteIdentical)
{
    ShardRun on = runTwoShards(true);
    ShardRun off = runTwoShards(false);

    ASSERT_GT(on.rtt, 0u) << "cross-shard ping never completed";
    EXPECT_EQ(on.rtt, off.rtt);
    EXPECT_EQ(on.console0, "hart-done");
    EXPECT_EQ(on.console1, "hart-done");
    EXPECT_EQ(on.console0, off.console0);
    EXPECT_EQ(on.console1, off.console1);

    // Per-rank dumps and rank 0's merged cross-shard view all match
    // byte for byte once host-timing entries are stripped.
    EXPECT_EQ(on.stripped0, off.stripped0);
    EXPECT_EQ(on.stripped1, off.stripped1);
    EXPECT_EQ(on.merged, off.merged);
    EXPECT_FALSE(on.merged.empty());
}

} // namespace
} // namespace firesim
