/**
 * @file
 * The headline acceptance test for distributed simulation: the same
 * topology run as one process and as two shards produces byte-identical
 * results — per-component stat subtrees, AutoCounter sample series,
 * and the cross-shard batch accounting invariant. Plus a two-process-
 * style TCP rendezvous smoke test (two transports in one process,
 * which exercises the identical listen/connect/Hello path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/remote/socket.hh"

namespace firesim
{
namespace
{

ClusterConfig
testConfig()
{
    ClusterConfig cc;
    cc.linkLatency = 400; // short rounds keep the test fast
    cc.switchLatency = 10;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 2000;
    return cc;
}

/** All "cluster.<component>.*" stats of @p snap, keyed by name. */
std::map<std::string, double>
componentSubtree(const StatSnapshot &snap, const std::string &component)
{
    std::string prefix = "cluster." + component + ".";
    std::map<std::string, double> out;
    for (const auto &[name, value] : snap.values)
        if (name.rfind(prefix, 0) == 0)
            out.emplace(name, value);
    return out;
}

void
spawnPing(NodeSystem &from, size_t to_index, Cycles *rtt_out)
{
    from.os().spawn("ping", -1, [&from, to_index, rtt_out]() -> Task<> {
        *rtt_out = co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

TEST(DistCluster, TwoShardsAreByteIdenticalToOneProcess)
{
    constexpr Cycles kRun = 600000;
    // twoLevel(2,2): root(switch0) over tor(switch1){node0,node1} and
    // tor(switch2){node2,node3}. Two shards split it switch2+nodes2,3
    // vs the rest, so the root<->switch2 trunk rides the socket.
    Cycles ref_rtt01 = 0, ref_rtt03 = 0, ref_rtt20 = 0;
    StatSnapshot ref_snap;
    std::vector<std::string> ref_cols;
    std::vector<AutoCounterSampler::Sample> ref_samples;
    uint64_t ref_batches = 0;
    {
        Cluster ref(topologies::twoLevel(2, 2), testConfig());
        spawnPing(ref.node(0), 1, &ref_rtt01);
        spawnPing(ref.node(0), 3, &ref_rtt03);
        spawnPing(ref.node(2), 0, &ref_rtt20);
        ref.run(kRun);
        ASSERT_GT(ref_rtt03, 0u) << "cross-ToR ping never completed";
        ASSERT_GT(ref_rtt20, 0u);
        ref_snap = ref.telemetry()->registry().snapshot(ref.now());
        ref_cols = ref.telemetry()->sampler()->columns();
        ref_samples = ref.telemetry()->sampler()->series();
        ref_batches = ref.fabric().batchesMoved();
    }

    // The sharded run: same topology, same workload, two shard
    // processes emulated by two threads over an AF_UNIX socketpair.
    auto [fd0, fd1] = localSocketPair();
    ClusterConfig cc0 = testConfig(), cc1 = testConfig();
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    Cycles rtt01 = 0, rtt03 = 0, rtt20 = 0;
    StatSnapshot snap0, snap1;
    std::vector<std::string> cols0;
    std::vector<AutoCounterSampler::Sample> samples0, samples1;
    uint64_t batches0 = 0, batches1 = 0;
    bool lost0 = true, lost1 = true;

    std::thread shard1([&] {
        // Rank 1 owns global nodes 2,3 as local 0,1.
        Cluster c1(topologies::twoLevel(2, 2), std::move(cc1),
                   std::move(fds1));
        spawnPing(c1.node(0), 0, &rtt20);
        c1.run(kRun);
        snap1 = c1.telemetry()->registry().snapshot(c1.now());
        samples1 = c1.telemetry()->sampler()->series();
        batches1 = c1.fabric().batchesMoved();
        lost1 = c1.shardTransport()->anyPeerLost();
    });
    {
        // Rank 0 owns global nodes 0,1 as local 0,1.
        Cluster c0(topologies::twoLevel(2, 2), std::move(cc0),
                   std::move(fds0));
        spawnPing(c0.node(0), 1, &rtt01);
        spawnPing(c0.node(0), 3, &rtt03);
        c0.run(kRun);
        snap0 = c0.telemetry()->registry().snapshot(c0.now());
        cols0 = c0.telemetry()->sampler()->columns();
        samples0 = c0.telemetry()->sampler()->series();
        batches0 = c0.fabric().batchesMoved();
        lost0 = c0.shardTransport()->anyPeerLost();
    }
    shard1.join();

    EXPECT_FALSE(lost0);
    EXPECT_FALSE(lost1);

    // Target-visible behavior is cycle-exact across the split.
    EXPECT_EQ(rtt01, ref_rtt01);
    EXPECT_EQ(rtt03, ref_rtt03);
    EXPECT_EQ(rtt20, ref_rtt20);

    // Per-component stat subtrees match the single-process run
    // exactly, each read from the shard that owns the component.
    for (const char *comp : {"switch0", "switch1", "node0", "node1"}) {
        auto want = componentSubtree(ref_snap, comp);
        ASSERT_FALSE(want.empty()) << comp;
        EXPECT_EQ(componentSubtree(snap0, comp), want) << comp;
    }
    for (const char *comp : {"switch2", "node2", "node3"}) {
        auto want = componentSubtree(ref_snap, comp);
        ASSERT_FALSE(want.empty()) << comp;
        EXPECT_EQ(componentSubtree(snap1, comp), want) << comp;
    }

    // AutoCounter series: same sample instants, and every component
    // column the shard shares with the reference carries identical
    // values sample for sample.
    ASSERT_EQ(samples0.size(), ref_samples.size());
    ASSERT_EQ(samples1.size(), ref_samples.size());
    for (size_t col = 0; col < cols0.size(); ++col) {
        const std::string &name = cols0[col];
        // Only per-component columns are comparable: whole-process
        // aggregates (cluster.fabric.*, cluster.shard.*) legitimately
        // cover just this shard's slice of the work.
        if (name.rfind("cluster.switch", 0) != 0 &&
            name.rfind("cluster.node", 0) != 0)
            continue;
        auto it = std::find(ref_cols.begin(), ref_cols.end(), name);
        if (it == ref_cols.end())
            continue; // shard-only stat
        size_t ref_col = static_cast<size_t>(it - ref_cols.begin());
        for (size_t s = 0; s < samples0.size(); ++s) {
            EXPECT_EQ(samples0[s].at, ref_samples[s].at);
            EXPECT_EQ(samples0[s].values[col],
                      ref_samples[s].values[ref_col])
                << name << " sample " << s;
        }
    }

    // Cross-shard TX batches are counted once, on the producing shard,
    // so the shards' batch totals partition the single-process total.
    EXPECT_EQ(batches0 + batches1, ref_batches);
}

TEST(DistCluster, TcpRendezvousSmoke)
{
    // Probe an ephemeral port, then run a real listen/connect/Hello
    // rendezvous between two sharded clusters. Same code path two
    // separate processes would take; threads stand in for processes.
    uint16_t base_port;
    {
        SocketFd probe = tcpListen("127.0.0.1", 0);
        base_port = boundPort(probe);
    }

    ClusterConfig cc0, cc1;
    cc0.linkLatency = cc1.linkLatency = 400;
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    cc0.shard.basePort = cc1.shard.basePort = base_port;

    Cycles rtt = 0;
    bool lost1 = true;
    std::thread shard1([&] {
        Cluster c1(topologies::singleTor(2), std::move(cc1));
        c1.run(300000);
        lost1 = c1.shardTransport()->anyPeerLost();
    });
    Cluster c0(topologies::singleTor(2), std::move(cc0));
    spawnPing(c0.node(0), 1, &rtt);
    c0.run(300000);
    bool lost0 = c0.shardTransport()->anyPeerLost();
    EXPECT_EQ(c0.shardTransport()->livePeers(), 1u);
    shard1.join();

    EXPECT_GT(rtt, 0u) << "cross-shard ping over TCP never completed";
    EXPECT_FALSE(lost0);
    EXPECT_FALSE(lost1);
}

} // namespace
} // namespace firesim
