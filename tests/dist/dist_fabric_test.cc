/**
 * @file
 * Fabric-level distributed tests: a link carried over the socket
 * transport must deliver exactly what a local link delivers — same
 * frames, same arrival cycles, byte-identical instruction traces —
 * and the round barrier must keep the shards in lockstep.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "net/fabric.hh"
#include "net/remote/shard_transport.hh"
#include "net/remote/socket.hh"
#include "telemetry/instr_trace.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

/**
 * ScriptedEndpoint that also records a TracerV-style trace derived
 * purely from the tokens it receives (pc = flit payload, cycle = token
 * arrival cycle). Target-deterministic by construction, so the
 * encoded trace bytes must match between local and remote runs.
 */
class TracedEndpoint : public ScriptedEndpoint
{
  public:
    explicit TracedEndpoint(std::string name)
        : ScriptedEndpoint(std::move(name)), trace(1 << 12)
    {}

    void
    advance(Cycles window_start, Cycles window,
            const std::vector<const TokenBatch *> &in,
            std::vector<TokenBatch> &out) override
    {
        ScriptedEndpoint::advance(window_start, window, in, out);
        for (const Flit &flit : in[0]->flits) {
            uint64_t pc = 0;
            for (uint8_t i = 0; i < flit.size; ++i)
                pc |= static_cast<uint64_t>(flit.data[i]) << (8 * i);
            trace.record(pc, flit.last ? OpClass::Jump : OpClass::Load,
                         in[0]->absCycle(flit));
        }
    }

    InstructionTrace trace;
};

EthFrame
taggedFrame(uint8_t tag, size_t payload_len)
{
    std::vector<uint8_t> payload(payload_len);
    for (size_t i = 0; i < payload_len; ++i)
        payload[i] = static_cast<uint8_t>(tag + i);
    return EthFrame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw, payload);
}

void
scriptTraffic(ScriptedEndpoint &a, ScriptedEndpoint &b)
{
    a.sendAt(100, taggedFrame(1, 40));
    a.sendAt(450, taggedFrame(2, 96));
    b.sendAt(300, taggedFrame(3, 17));
    a.sendAt(1000, taggedFrame(4, 200));
    b.sendAt(1500, taggedFrame(5, 64));
}

void
expectSameDelivery(const ScriptedEndpoint &got,
                   const ScriptedEndpoint &want)
{
    ASSERT_EQ(got.received.size(), want.received.size());
    for (size_t i = 0; i < got.received.size(); ++i) {
        EXPECT_EQ(got.received[i].first, want.received[i].first)
            << "frame " << i << " arrival cycle";
        EXPECT_EQ(got.received[i].second.bytes,
                  want.received[i].second.bytes)
            << "frame " << i << " bytes";
    }
}

/** One shard: a single endpoint whose only port is a remote link. */
struct Shard
{
    static constexpr Cycles kLat = 200;

    Shard(uint32_t rank, std::string ep_name, SocketFd fd)
        : ep(std::make_unique<TracedEndpoint>(std::move(ep_name)))
    {
        // Tokens A->B travel as global link 0, B->A as link 1.
        uint32_t rx = rank == 0 ? 1 : 0;
        uint32_t tx = rank == 0 ? 0 : 1;
        fabric.addEndpoint(ep.get());
        fabric.connectRemote(ep.get(), 0, kLat, rx, tx,
                             rank == 0 ? "B" : "A");
        fabric.finalize();

        ShardTransport::Options opts;
        opts.rank = rank;
        opts.shards = 2;
        std::vector<std::pair<uint32_t, SocketFd>> fds;
        fds.emplace_back(1 - rank, std::move(fd));
        transport = ShardTransport::fromFds(opts, std::move(fds), 77);
        transport->bindTxLink(tx, 1 - rank);
        transport->bindRxChannel(rx, 1 - rank, fabric.remoteRxChannel(rx));
        fabric.setRemoteHook(transport.get());
    }

    TokenFabric fabric;
    std::unique_ptr<TracedEndpoint> ep;
    std::unique_ptr<ShardTransport> transport;
};

TEST(DistFabric, RemoteLinkMatchesLocalLinkExactly)
{
    constexpr Cycles kRun = 4000;

    // Reference: the same endpoints and scripts on a local link.
    TracedEndpoint la("A"), lb("B");
    TokenFabric local;
    local.addEndpoint(&la);
    local.addEndpoint(&lb);
    local.connect(&la, 0, &lb, 0, Shard::kLat);
    local.finalize();
    scriptTraffic(la, lb);
    local.run(kRun);
    ASSERT_GE(la.received.size() + lb.received.size(), 5u);

    // Distributed: one endpoint per shard, link carried over an
    // AF_UNIX socketpair, each shard driven by its own thread.
    auto [fd0, fd1] = localSocketPair();
    Shard s0(0, "A", std::move(fd0));
    Shard s1(1, "B", std::move(fd1));
    scriptTraffic(*s0.ep, *s1.ep);
    std::thread peer([&] { s1.fabric.run(kRun); });
    s0.fabric.run(kRun);
    peer.join();

    expectSameDelivery(*s0.ep, la);
    expectSameDelivery(*s1.ep, lb);

    // Out-of-band artifacts are byte-identical, not just equivalent.
    EXPECT_EQ(s0.ep->trace.encodeCompressed(),
              la.trace.encodeCompressed());
    EXPECT_EQ(s1.ep->trace.encodeCompressed(),
              lb.trace.encodeCompressed());

    // Both shards saw every round barrier, and every produced batch
    // crossed the wire exactly once per direction per round.
    const auto &st0 = s0.transport->peerStatsAt(0);
    const auto &st1 = s1.transport->peerStatsAt(0);
    uint64_t rounds = kRun / s0.fabric.quantum();
    EXPECT_EQ(st0.roundsBarriered, rounds);
    EXPECT_EQ(st1.roundsBarriered, rounds);
    EXPECT_EQ(st0.batchesTx, rounds);
    EXPECT_EQ(st1.batchesTx, rounds);
    EXPECT_EQ(st0.batchesRx, rounds);
    EXPECT_TRUE(st0.alive);
    EXPECT_TRUE(st1.alive);
}

TEST(DistFabric, BarrierKeepsShardsInLockstepAcrossRounds)
{
    // Drive two raw transports through the fabric's round discipline
    // by hand: each round ships one batch and barriers. The RX side
    // must observe restamped batches in production order with payloads
    // intact — TCP buffering may deliver many rounds at once, but the
    // barrier must hand over exactly one per round.
    constexpr Cycles kQuantum = 200;
    constexpr int kRounds = 6;

    auto [fd0, fd1] = localSocketPair();
    ShardTransport::Options opts0, opts1;
    opts0.rank = 0;
    opts0.shards = 2;
    opts1.rank = 1;
    opts1.shards = 2;

    std::vector<std::pair<uint32_t, SocketFd>> v0, v1;
    v0.emplace_back(1, std::move(fd0));
    v1.emplace_back(0, std::move(fd1));
    auto t0 = ShardTransport::fromFds(opts0, std::move(v0), 5);
    auto t1 = ShardTransport::fromFds(opts1, std::move(v1), 5);

    TokenChannel chan(kQuantum, kQuantum); // latency == quantum
    chan.setLabel("t0->t1 [remote link 0]");
    t0->bindTxLink(0, 1);
    t1->bindRxChannel(0, 0, &chan);

    std::vector<TokenBatch> got;
    std::thread rx([&] {
        for (int r = 0; r < kRounds; ++r) {
            got.push_back(chan.pop());
            t1->onRoundComplete(r, Cycles(r) * kQuantum);
        }
    });
    for (int r = 0; r < kRounds; ++r) {
        TokenBatch b(Cycles(r) * kQuantum, kQuantum);
        Flit f;
        f.offset = static_cast<uint32_t>(r);
        f.size = 2;
        f.data[0] = static_cast<uint8_t>(r);
        f.data[1] = 0x5a;
        b.push(f);
        t0->onTxBatch(0, b);
        t0->onRoundComplete(r, Cycles(r) * kQuantum);
    }
    rx.join();

    ASSERT_EQ(got.size(), size_t(kRounds));
    // Round 0 pops the seed; round r pops the batch produced in round
    // r-1, restamped one latency later.
    EXPECT_TRUE(got[0].isEmpty());
    EXPECT_EQ(got[0].start, 0u);
    for (int r = 1; r < kRounds; ++r) {
        const TokenBatch &b = got[r];
        EXPECT_EQ(b.start, Cycles(r) * kQuantum);
        ASSERT_EQ(b.flits.size(), 1u);
        EXPECT_EQ(b.flits[0].offset, uint32_t(r - 1));
        EXPECT_EQ(b.flits[0].data[0], uint8_t(r - 1));
        EXPECT_EQ(b.flits[0].data[1], 0x5a);
    }

    t0->shutdown();
    t1->shutdown();
    EXPECT_EQ(t0->peerStatsAt(0).roundsBarriered, uint64_t(kRounds));
    EXPECT_EQ(t1->peerStatsAt(0).batchesRx, uint64_t(kRounds));
}

} // namespace
} // namespace firesim
