/**
 * @file
 * Distributed fault handling: a shard whose peer dies mid-run must
 * degrade gracefully through the HealthMonitor (the PR-1 degraded-host
 * model) instead of hanging in a blocking recv — and must do so within
 * the configured barrier timeout even when the peer vanishes silently.
 * With failFast the loss is fatal instead, for CI death tests.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/remote/shard_transport.hh"
#include "net/remote/socket.hh"

namespace firesim
{
namespace
{

TEST(DistFault, PeerDeathDegradesSurvivorThroughHealthMonitor)
{
    auto [fd0, fd1] = localSocketPair();
    ClusterConfig cc0, cc1;
    cc0.linkLatency = cc1.linkLatency = 400;
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    cc0.shard.recvTimeoutMs = 5000;
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    // The peer shard simulates a short while, then exits (its
    // destructor sends an orderly Bye — a "peer process finished
    // early" failure, caught mid-run by the survivor's barrier).
    std::thread dying([&] {
        Cluster c1(topologies::singleTor(2), std::move(cc1),
                   std::move(fds1));
        c1.run(4000);
    });

    Cluster c0(topologies::singleTor(2), std::move(cc0),
               std::move(fds0));
    c0.run(40000); // well past the peer's exit
    dying.join();

    // The survivor ran to completion, degraded rather than hung.
    EXPECT_EQ(c0.now(), 40000u);
    ASSERT_TRUE(c0.shardTransport()->anyPeerLost());
    EXPECT_EQ(c0.shardTransport()->livePeers(), 0u);
    EXPECT_EQ(c0.health().count(FaultEvent::Kind::PeerShardLost), 1u);
    EXPECT_NE(c0.healthReport().find("peer-shard-lost"),
              std::string::npos);
}

TEST(DistFault, SilentPeerTimesOutWithinBound)
{
    // A peer that holds its socket open but never speaks: the barrier
    // must give up after recvTimeoutMs and synthesize empty tokens,
    // not block forever.
    auto [fd0, fd1] = localSocketPair();
    ShardTransport::Options opts;
    opts.rank = 0;
    opts.shards = 2;
    opts.recvTimeoutMs = 250;
    std::vector<std::pair<uint32_t, SocketFd>> fds;
    fds.emplace_back(1, std::move(fd0));
    auto t = ShardTransport::fromFds(opts, std::move(fds), 9);

    TokenChannel chan(400, 400);
    chan.setLabel("silent->here [remote link 3]");
    t->bindRxChannel(3, 1, &chan);

    chan.pop(); // the fabric's round-0 pop of the seed batch
    auto t0 = std::chrono::steady_clock::now();
    t->onRoundComplete(0, 0);
    auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    EXPECT_GE(waited, 200); // ~recvTimeoutMs, minus poll granularity
    EXPECT_LT(waited, 5000) << "barrier did not respect its timeout";
    EXPECT_TRUE(t->anyPeerLost());

    // The dead peer's link was refilled with an empty batch, and
    // later rounds skip the barrier entirely (no second timeout).
    EXPECT_EQ(chan.depth(), 1u);
    TokenBatch round1 = chan.pop();
    EXPECT_TRUE(round1.isEmpty());
    EXPECT_EQ(round1.start, 400u);
    auto t1 = std::chrono::steady_clock::now();
    t->onRoundComplete(1, 400);
    auto again = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t1)
                     .count();
    EXPECT_LT(again, 250);
    EXPECT_EQ(chan.depth(), 1u);

    (void)fd1; // intentionally kept open and silent
}

TEST(DistFaultDeath, FailFastAbortsOnLostPeer)
{
    auto fds = localSocketPair();
    ShardTransport::Options opts;
    opts.rank = 0;
    opts.shards = 2;
    opts.recvTimeoutMs = 250;
    opts.failFast = true;
    std::vector<std::pair<uint32_t, SocketFd>> v;
    v.emplace_back(1, std::move(fds.first));
    auto t = ShardTransport::fromFds(opts, std::move(v), 9);
    fds.second = SocketFd(); // close the peer's end: EOF at the barrier
    EXPECT_EXIT(t->onRoundComplete(0, 0), ::testing::ExitedWithCode(1),
                "lost peer shard 1");
}

} // namespace
} // namespace firesim
