/**
 * @file
 * Elastic re-sharding tests. Two halves:
 *
 *  - The cost-aware deployment mapper: DeploymentProfile round-trips
 *    through its text format, uniform costs reproduce the block split
 *    exactly, skewed costs rebalance, and the cost plan is never worse
 *    (by max rank load) than the block plan it would replace.
 *
 *  - The re-shard parity matrix: a snapshot written under one
 *    ShardPlan restores under a *different* plan — 1<->2<->3 ranks,
 *    block vs explicit owner maps vs the cost policy — and the
 *    continued run is byte-identical (stripped stat dumps) to the
 *    same plan's uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "manager/checkpoint.hh"
#include "manager/cluster.hh"
#include "manager/deploy.hh"
#include "manager/shard.hh"
#include "manager/topology.hh"
#include "net/remote/socket.hh"
#include "snapshot/snapshot.hh"

namespace firesim
{
namespace
{

constexpr Cycles kSave = 60000;
constexpr Cycles kTotal = 120000;

ClusterConfig
testConfig()
{
    ClusterConfig cc;
    cc.linkLatency = 400;
    cc.switchLatency = 10;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 2000;
    return cc;
}

void
spawnPinger(NodeSystem &from, size_t to_index)
{
    from.os().spawn("pinger", -1, [&from, to_index]() -> Task<> {
        while (true)
            co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

/** The workload every plan agrees on, keyed by *global* node index
 *  (sharded builds name local nodes by their global id): node0 pings
 *  node3 and node2 pings node1 (both cross shards under every split
 *  tested), node1 pings node0. */
void
spawnWork(Cluster &clu)
{
    for (size_t i = 0; i < clu.nodeCount(); ++i) {
        unsigned g = 0;
        ASSERT_EQ(std::sscanf(clu.node(i).name().c_str(), "node%u", &g),
                  1);
        switch (g) {
        case 0: spawnPinger(clu.node(i), 3); break;
        case 1: spawnPinger(clu.node(i), 0); break;
        case 2: spawnPinger(clu.node(i), 1); break;
        default: break;
        }
    }
}

std::string
strippedDump(Cluster &clu)
{
    return stripHostTimingStats(
        clu.telemetry()->registry().dumpJson(clu.now()));
}

/** Run the twoLevel(2,2) workload single-process; returns the final
 *  stripped dump. */
std::string
runSingle(const std::function<void(Cluster &)> &body)
{
    Cluster clu(topologies::twoLevel(2, 2), testConfig());
    spawnWork(clu);
    body(clu);
    return strippedDump(clu);
}

struct MultiSpec
{
    uint32_t shards = 2;
    std::vector<uint32_t> owners; //!< empty = policy decides
    ShardPolicy policy = ShardPolicy::Block;
    std::string profileIn;
};

/** Run the same workload split across @p spec.shards thread-ranks
 *  over a full socketpair mesh; returns per-rank stripped dumps. */
std::vector<std::string>
runMulti(const MultiSpec &spec,
         const std::function<void(Cluster &, uint32_t)> &body)
{
    uint32_t n = spec.shards;
    std::vector<std::vector<std::pair<uint32_t, SocketFd>>> fds(n);
    for (uint32_t a = 0; a < n; ++a) {
        for (uint32_t b = a + 1; b < n; ++b) {
            auto [fa, fb] = localSocketPair();
            fds[a].emplace_back(b, std::move(fa));
            fds[b].emplace_back(a, std::move(fb));
        }
    }

    std::vector<std::string> dumps(n);
    auto runRank = [&](uint32_t rank) {
        ClusterConfig cc = testConfig();
        cc.shard.shards = n;
        cc.shard.rank = rank;
        cc.shard.owners = spec.owners;
        cc.shard.policy = spec.policy;
        cc.shard.profileIn = spec.profileIn;
        Cluster clu(topologies::twoLevel(2, 2), std::move(cc),
                    std::move(fds[rank]));
        spawnWork(clu);
        body(clu, rank);
        dumps[rank] = strippedDump(clu);
    };
    std::vector<std::thread> rest;
    for (uint32_t r = 1; r < n; ++r)
        rest.emplace_back([&, r] { runRank(r); });
    runRank(0);
    for (auto &t : rest)
        t.join();
    return dumps;
}

void
removeSnapshotFiles(const std::string &path)
{
    std::remove(path.c_str());
    for (int r = 0; r < 4; ++r)
        std::remove((path + ".rank" + std::to_string(r)).c_str());
}

// ---- Deployment profile + cost mapper -------------------------------

TEST(DeployProfile, RoundTripsThroughTextFormat)
{
    DeploymentProfile p;
    p.topoHash = 0xdeadbeefcafef00dULL;
    p.serverCostNs = {12.5, 0.0, 3.0};
    p.linkFlits = {7, 0, 0, 42};

    std::string path = ::testing::TempDir() + "fsprof_rt.prof";
    ASSERT_EQ(p.saveFile(path), "");

    DeploymentProfile q;
    std::string err;
    ASSERT_TRUE(q.loadFile(path, &err)) << err;
    EXPECT_EQ(q.topoHash, p.topoHash);
    ASSERT_EQ(q.serverCostNs.size(), 3u);
    EXPECT_DOUBLE_EQ(q.serverCostNs[0], 12.5);
    EXPECT_DOUBLE_EQ(q.serverCostNs[1], 0.0);
    EXPECT_EQ(q.linkFlits, p.linkFlits);
    std::remove(path.c_str());

    // A missing file is a clean first run, not an error.
    DeploymentProfile fresh;
    EXPECT_TRUE(fresh.loadFile(path, &err)) << err;
    EXPECT_TRUE(fresh.empty());

    // Garbage is an error, not a silent fallback.
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a profile\n", f);
    std::fclose(f);
    DeploymentProfile bad;
    EXPECT_FALSE(bad.loadFile(path, &err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

TEST(DeployProfile, MergeOverwritesWithMeasuredValues)
{
    DeploymentProfile a, b;
    a.topoHash = b.topoHash = 99;
    a.serverCostNs = {1.0, 0.0};
    a.linkFlits = {5, 0};
    b.serverCostNs = {0.0, 2.0};
    b.linkFlits = {0, 9};
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.serverCostNs[0], 1.0);
    EXPECT_DOUBLE_EQ(a.serverCostNs[1], 2.0);
    EXPECT_EQ(a.linkFlits[0], 5u);
    EXPECT_EQ(a.linkFlits[1], 9u);
}

TEST(DeployMapper, UniformCostsReproduceBlockSplit)
{
    SwitchSpec t = topologies::singleTor(10);
    ShardPlan block = ShardPlan::build(t, 4, 400, 10, 0);
    DeploymentProfile empty; // nothing measured -> uniform weights
    EXPECT_EQ(computeCostOwners(block, empty), block.serverOwner);

    DeploymentProfile uniform;
    uniform.topoHash = block.topoHash;
    uniform.serverCostNs.assign(10, 50.0);
    EXPECT_EQ(computeCostOwners(block, uniform), block.serverOwner);
}

TEST(DeployMapper, SkewedCostsRebalance)
{
    SwitchSpec t = topologies::singleTor(8);
    ShardPlan plan = ShardPlan::build(t, 2, 400, 10, 0);
    DeploymentProfile prof;
    prof.topoHash = plan.topoHash;
    // Server 0 dwarfs everything: block's {0..3}|{4..7} split carries
    // 103 vs 4; the cost split should shed servers from rank 0.
    prof.serverCostNs = {100, 1, 1, 1, 1, 1, 1, 1};

    std::vector<uint32_t> owners = computeCostOwners(plan, prof);
    PlanCost blk = evaluateOwners(plan, plan.serverOwner, prof);
    PlanCost ours = evaluateOwners(plan, owners, prof);
    EXPECT_LT(ours.maxLoadNs, blk.maxLoadNs);
    EXPECT_NE(owners, plan.serverOwner);
    // Deterministic: same inputs, same plan.
    EXPECT_EQ(owners, computeCostOwners(plan, prof));
}

TEST(DeployMapper, CostNeverWorseThanBlock)
{
    SwitchSpec t = topologies::twoLevel(3, 4); // 12 servers
    for (uint32_t shards : {2u, 3u, 5u}) {
        ShardPlan plan = ShardPlan::build(t, shards, 400, 10, 0);
        uint64_t seed = 0x2545f4914f6cdd1dULL;
        for (int trial = 0; trial < 16; ++trial) {
            DeploymentProfile prof;
            prof.topoHash = plan.topoHash;
            prof.serverCostNs.resize(plan.nServers);
            for (double &c : prof.serverCostNs) {
                seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
                c = static_cast<double>((seed >> 33) % 1000);
            }
            std::vector<uint32_t> owners = computeCostOwners(plan, prof);
            PlanCost blk = evaluateOwners(plan, plan.serverOwner, prof);
            PlanCost ours = evaluateOwners(plan, owners, prof);
            EXPECT_LE(ours.maxLoadNs, blk.maxLoadNs + 1e-6)
                << "shards=" << shards << " trial=" << trial;
        }
    }
}

TEST(DeployProfile, ClusterWritesProfileAtTeardown)
{
    std::string path = ::testing::TempDir() + "fsprof_teardown.prof";
    std::remove(path.c_str());
    uint64_t topo_hash = 0;
    {
        ClusterConfig cc = testConfig();
        cc.shard.profileOut = path;
        Cluster clu(topologies::twoLevel(2, 2), std::move(cc));
        spawnWork(clu);
        clu.run(kSave);
        topo_hash = clu.topoHash();
    }
    DeploymentProfile prof;
    std::string err;
    ASSERT_TRUE(prof.loadFile(path, &err)) << err;
    EXPECT_EQ(prof.topoHash, topo_hash);
    ASSERT_EQ(prof.serverCostNs.size(), 4u);
    uint64_t moved = 0;
    for (uint64_t f : prof.linkFlits)
        moved += f;
    EXPECT_GT(moved, 0u) << "pinger traffic left no flit counts";
    std::remove(path.c_str());
}

// ---- Re-shard parity matrix -----------------------------------------

TEST(ReShard, OneProcessSnapshotRestoresAcrossPlans)
{
    std::string path = ::testing::TempDir() + "fsnp_reshard_1toN.snap";
    removeSnapshotFiles(path);

    // The snapshot source: a single-process run saved mid-flight.
    runSingle([&](Cluster &clu) {
        clu.run(kSave);
        ASSERT_EQ(clu.saveSnapshot(path), "");
        clu.run(kTotal - kSave);
    });

    auto resume_body = [&](Cluster &clu, uint32_t rank) {
        ASSERT_EQ(resumeFromSnapshot(clu, path), "") << "rank " << rank;
        EXPECT_EQ(clu.now(), kSave);
        clu.run(kTotal - kSave);
    };

    // 1 -> 2 ranks, block split.
    MultiSpec block2;
    std::vector<std::string> ref2 =
        runMulti(block2, [](Cluster &clu, uint32_t) { clu.run(kTotal); });
    std::vector<std::string> got2 = runMulti(block2, resume_body);
    ASSERT_FALSE(ref2[0].empty());
    EXPECT_EQ(got2[0], ref2[0]) << "rank 0 diverged after 1->2 re-shard";
    EXPECT_EQ(got2[1], ref2[1]) << "rank 1 diverged after 1->2 re-shard";

    // 1 -> 2 ranks, explicit owner map splitting tor0's servers
    // across ranks (stresses cross-shard switch<->server links).
    MultiSpec remap2;
    remap2.owners = {0, 1, 1, 0};
    std::vector<std::string> ref_remap =
        runMulti(remap2, [](Cluster &clu, uint32_t) { clu.run(kTotal); });
    std::vector<std::string> got_remap = runMulti(remap2, resume_body);
    EXPECT_NE(ref_remap[0], ref2[0])
        << "owner remap did not change rank 0's component set";
    EXPECT_EQ(got_remap[0], ref_remap[0])
        << "rank 0 diverged after 1->2 owner-remap re-shard";
    EXPECT_EQ(got_remap[1], ref_remap[1])
        << "rank 1 diverged after 1->2 owner-remap re-shard";

    // 1 -> 3 ranks.
    MultiSpec block3;
    block3.shards = 3;
    std::vector<std::string> ref3 =
        runMulti(block3, [](Cluster &clu, uint32_t) { clu.run(kTotal); });
    std::vector<std::string> got3 = runMulti(block3, resume_body);
    for (int r = 0; r < 3; ++r)
        EXPECT_EQ(got3[r], ref3[r])
            << "rank " << r << " diverged after 1->3 re-shard";

    removeSnapshotFiles(path);
}

TEST(ReShard, ShardedSnapshotRestoresIntoOtherGeometries)
{
    std::string path = ::testing::TempDir() + "fsnp_reshard_Nto.snap";
    removeSnapshotFiles(path);

    // Source: a 2-shard block run saved mid-flight.
    MultiSpec block2;
    runMulti(block2, [&](Cluster &clu, uint32_t rank) {
        clu.run(kSave);
        ASSERT_EQ(clu.saveSnapshot(path), "") << "rank " << rank;
        clu.run(kTotal - kSave);
    });

    // 2 -> 1: merge back into a single process.
    std::string ref1 =
        runSingle([](Cluster &clu) { clu.run(kTotal); });
    std::string got1 = runSingle([&](Cluster &clu) {
        ASSERT_EQ(resumeFromSnapshot(clu, path), "");
        EXPECT_EQ(clu.now(), kSave);
        clu.run(kTotal - kSave);
    });
    ASSERT_FALSE(ref1.empty());
    EXPECT_EQ(got1, ref1) << "single process diverged after 2->1";

    auto resume_body = [&](Cluster &clu, uint32_t rank) {
        ASSERT_EQ(resumeFromSnapshot(clu, path), "") << "rank " << rank;
        EXPECT_EQ(clu.now(), kSave);
        clu.run(kTotal - kSave);
    };

    // 2 -> 2 with a different owner map (same rank count, different
    // placement — the header alone cannot tell these apart; the plan
    // section must).
    MultiSpec remap2;
    remap2.owners = {0, 1, 1, 0};
    std::vector<std::string> ref_remap =
        runMulti(remap2, [](Cluster &clu, uint32_t) { clu.run(kTotal); });
    std::vector<std::string> got_remap = runMulti(remap2, resume_body);
    EXPECT_EQ(got_remap[0], ref_remap[0])
        << "rank 0 diverged after owner-remap restore";
    EXPECT_EQ(got_remap[1], ref_remap[1])
        << "rank 1 diverged after owner-remap restore";

    // 2 -> 3 ranks.
    MultiSpec block3;
    block3.shards = 3;
    std::vector<std::string> ref3 =
        runMulti(block3, [](Cluster &clu, uint32_t) { clu.run(kTotal); });
    std::vector<std::string> got3 = runMulti(block3, resume_body);
    for (int r = 0; r < 3; ++r)
        EXPECT_EQ(got3[r], ref3[r])
            << "rank " << r << " diverged after 2->3 re-shard";

    removeSnapshotFiles(path);
}

TEST(ReShard, CostPolicyPlanRestoresByteIdentically)
{
    std::string snap = ::testing::TempDir() + "fsnp_reshard_cost.snap";
    std::string prof_path = ::testing::TempDir() + "fsprof_cost.prof";
    removeSnapshotFiles(snap);

    // A profile that makes node0 look expensive enough that the cost
    // mapper picks a non-block split of the 4 servers.
    SwitchSpec t = topologies::twoLevel(2, 2);
    ShardPlan base = ShardPlan::build(t, 2, 400, 10, 0);
    DeploymentProfile prof;
    prof.topoHash = base.topoHash;
    prof.serverCostNs = {400.0, 10.0, 10.0, 10.0};
    ASSERT_EQ(prof.saveFile(prof_path), "");
    ASSERT_NE(computeCostOwners(base, prof), base.serverOwner);

    // Source snapshot from a single-process run.
    runSingle([&](Cluster &clu) {
        clu.run(kSave);
        ASSERT_EQ(clu.saveSnapshot(snap), "");
    });

    MultiSpec cost2;
    cost2.policy = ShardPolicy::Cost;
    cost2.profileIn = prof_path;
    std::vector<std::string> ref =
        runMulti(cost2, [&](Cluster &clu, uint32_t) {
            EXPECT_NE(clu.plan().serverOwner, base.serverOwner)
                << "cost policy fell back to the block split";
            clu.run(kTotal);
        });
    std::vector<std::string> got =
        runMulti(cost2, [&](Cluster &clu, uint32_t rank) {
            ASSERT_EQ(resumeFromSnapshot(clu, snap), "")
                << "rank " << rank;
            clu.run(kTotal - kSave);
        });
    EXPECT_EQ(got[0], ref[0]) << "rank 0 diverged under cost plan";
    EXPECT_EQ(got[1], ref[1]) << "rank 1 diverged under cost plan";

    removeSnapshotFiles(snap);
    std::remove(prof_path.c_str());
}

TEST(ReShard, SamePlanRestoreStillFullyVerifies)
{
    // The re-shard machinery must not have cost the same-plan path its
    // verification: restoring rank files written by a *different*
    // owner map under the same shard count goes through the re-home
    // path (checked above); restoring the same plan still runs the
    // stats byte-check, and a topology mismatch is still refused.
    std::string path = ::testing::TempDir() + "fsnp_reshard_verify.snap";
    removeSnapshotFiles(path);
    runSingle([&](Cluster &clu) {
        clu.run(kSave);
        ASSERT_EQ(clu.saveSnapshot(path), "");
    });

    // Different topology: refused with a hash diagnostic.
    {
        ClusterConfig cc = testConfig();
        Cluster clu(topologies::singleTor(4), std::move(cc));
        spawnWork(clu);
        clu.run(kSave);
        std::string e = clu.loadSnapshot(path);
        EXPECT_NE(e.find("topology"), std::string::npos) << e;
    }

    // Same plan: clean verified restore.
    {
        Cluster clu(topologies::twoLevel(2, 2), testConfig());
        spawnWork(clu);
        clu.run(kSave);
        EXPECT_EQ(clu.loadSnapshot(path), "");
    }
    removeSnapshotFiles(path);
}

} // namespace
} // namespace firesim
