/**
 * @file
 * ShardPlan tests: the partition must be a pure deterministic function
 * of (topology, shard count, latencies), its global numbering must
 * match the single-process Cluster builder name-for-name, and its
 * ownership rules (contiguous server blocks, switches follow their
 * first server) must hold on every topology shape.
 */

#include <gtest/gtest.h>

#include "manager/cluster.hh"
#include "manager/shard.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

TEST(ShardPlan, DeterministicAcrossRebuilds)
{
    SwitchSpec t1 = topologies::twoLevel(4, 4);
    SwitchSpec t2 = topologies::twoLevel(4, 4);
    ShardPlan a = ShardPlan::build(t1, 4, 6400, 10, 0);
    ShardPlan b = ShardPlan::build(t2, 4, 6400, 10, 0);
    EXPECT_EQ(a.topoHash, b.topoHash);
    EXPECT_EQ(a.serverOwner, b.serverOwner);
    EXPECT_EQ(a.switchOwner, b.switchOwner);
    ASSERT_EQ(a.links.size(), b.links.size());
}

TEST(ShardPlan, HashCoversTimingAndShape)
{
    SwitchSpec t = topologies::twoLevel(2, 2);
    uint64_t base = ShardPlan::build(t, 2, 6400, 10, 0).topoHash;
    // Any input whose disagreement would desynchronize shards must
    // change the topology hash: latencies, window, topology shape.
    EXPECT_NE(base, ShardPlan::build(t, 2, 3200, 10, 0).topoHash);
    EXPECT_NE(base, ShardPlan::build(t, 2, 6400, 20, 0).topoHash);
    EXPECT_NE(base, ShardPlan::build(t, 2, 6400, 10, 100).topoHash);
    SwitchSpec other = topologies::twoLevel(2, 3);
    EXPECT_NE(base, ShardPlan::build(other, 2, 6400, 10, 0).topoHash);
    // The shard count and owner map deliberately do NOT change the
    // topology hash — that is what lets one snapshot restore under a
    // different plan. They do change the plan hash the transport's
    // Hello exchanges.
    uint64_t plan2 = ShardPlan::build(t, 2, 6400, 10, 0).planHash;
    EXPECT_EQ(base, ShardPlan::build(t, 4, 6400, 10, 0).topoHash);
    EXPECT_NE(plan2, ShardPlan::build(t, 4, 6400, 10, 0).planHash);
    EXPECT_NE(plan2,
              ShardPlan::build(t, 2, 6400, 10, 0, {0, 0, 0, 1}).planHash);
}

TEST(ShardPlan, ExplicitOwnerMapRespected)
{
    SwitchSpec t = topologies::twoLevel(2, 2);
    ShardPlan plan =
        ShardPlan::build(t, 2, 6400, 10, 0, {1, 0, 0, 1});
    EXPECT_EQ(plan.serverOwner, (std::vector<uint32_t>{1, 0, 0, 1}));
    // Switches still follow their first (preorder-lowest) server.
    ASSERT_EQ(plan.switchOwner.size(), 3u);
    EXPECT_EQ(plan.switchOwner[0], 1u); // root's first server is 0
    EXPECT_EQ(plan.switchOwner[1], 1u); // tor0 owns servers 0,1
    EXPECT_EQ(plan.switchOwner[2], 0u); // tor1 owns servers 2,3
    // Same map, same hash; block map differs.
    EXPECT_EQ(plan.planHash,
              ShardPlan::build(t, 2, 6400, 10, 0, {1, 0, 0, 1}).planHash);
    EXPECT_NE(plan.planHash,
              ShardPlan::build(t, 2, 6400, 10, 0).planHash);
}

TEST(ShardPlanDeath, OwnerMapValidated)
{
    SwitchSpec t = topologies::twoLevel(2, 2);
    EXPECT_EXIT(ShardPlan::build(t, 2, 6400, 10, 0, {0, 1, 0}),
                ::testing::ExitedWithCode(1), "owner map");
    EXPECT_EXIT(ShardPlan::build(t, 2, 6400, 10, 0, {0, 2, 0, 1}),
                ::testing::ExitedWithCode(1), "owner");
    EXPECT_EXIT(ShardPlan::build(t, 2, 6400, 10, 0, {0, 0, 0, 0}),
                ::testing::ExitedWithCode(1), "no servers");
}

TEST(ShardPlan, CountsAndLinksMatchTopology)
{
    SwitchSpec t = topologies::twoLevel(3, 5);
    ShardPlan plan = ShardPlan::build(t, 3, 6400, 10, 0);
    EXPECT_EQ(plan.nSwitches, 4u);
    EXPECT_EQ(plan.nServers, 15u);
    // One link per non-root switch plus one per server.
    EXPECT_EQ(plan.links.size(), 3u + 15u);
    // Link ids are dense and disjoint across directions.
    EXPECT_EQ(ShardPlan::downLinkId(4), 8u);
    EXPECT_EQ(ShardPlan::upLinkId(4), 9u);
}

TEST(ShardPlan, ServersSplitIntoContiguousBalancedBlocks)
{
    SwitchSpec t = topologies::singleTor(10);
    ShardPlan plan = ShardPlan::build(t, 4, 6400, 10, 0);
    ASSERT_EQ(plan.serverOwner.size(), 10u);
    // Non-decreasing owners, every rank non-empty, sizes within 1.
    std::vector<uint32_t> sizes(4, 0);
    for (size_t j = 0; j < plan.serverOwner.size(); ++j) {
        if (j > 0) {
            EXPECT_GE(plan.serverOwner[j], plan.serverOwner[j - 1]);
        }
        ASSERT_LT(plan.serverOwner[j], 4u);
        ++sizes[plan.serverOwner[j]];
    }
    for (uint32_t rank = 0; rank < 4; ++rank) {
        EXPECT_GE(sizes[rank], 2u);
        EXPECT_LE(sizes[rank], 3u);
    }
}

TEST(ShardPlan, SwitchesFollowTheirFirstServer)
{
    SwitchSpec t = topologies::twoLevel(2, 2); // root + 2 ToRs, 4 nodes
    ShardPlan plan = ShardPlan::build(t, 2, 6400, 10, 0);
    // Preorder: root=0, tor0=1 (servers 0,1), tor1=2 (servers 2,3).
    ASSERT_EQ(plan.switchOwner.size(), 3u);
    EXPECT_EQ(plan.switchOwner[0], 0u); // root: first server is 0
    EXPECT_EQ(plan.switchOwner[1], 0u);
    EXPECT_EQ(plan.switchOwner[2], 1u); // tor1 lives with servers 2,3
    // With this split only the root<->tor1 trunk crosses shards.
    size_t cross = 0;
    for (const auto &l : plan.links)
        cross += plan.ownerOfLink(l, false) != plan.ownerOfLink(l, true);
    EXPECT_EQ(cross, 1u);
}

TEST(ShardPlan, NumberingMatchesSingleProcessCluster)
{
    // The byte-identity tests depend on global indices lining up with
    // the single-process builder's component names. Build the real
    // Cluster and check the plan counts it the same way.
    SwitchSpec t = topologies::twoLevel(2, 3);
    ShardPlan plan = ShardPlan::build(t, 2, 6400, 10, 0);
    ClusterConfig cc;
    Cluster cluster(topologies::twoLevel(2, 3), cc);
    EXPECT_EQ(plan.nSwitches, cluster.switchCount());
    EXPECT_EQ(plan.nServers, cluster.nodeCount());
    // Per-switch port counts (incl. uplink) match the built switches.
    for (uint32_t s = 0; s < plan.nSwitches; ++s)
        EXPECT_EQ(plan.switchPorts[s], cluster.switchAt(s).config().ports)
            << "switch" << s;
    // The plan's root MAC routing view matches the built root switch.
    Switch &root = cluster.rootSwitch();
    for (uint32_t port = 0; port < plan.portServers[0].size(); ++port)
        for (uint32_t server : plan.portServers[0][port])
            EXPECT_EQ(root.lookupMac(Cluster::macFor(server)),
                      std::optional<uint32_t>(port));
}

TEST(ShardPlanDeath, MoreShardsThanServersRejected)
{
    SwitchSpec t = topologies::singleTor(2);
    EXPECT_EXIT(ShardPlan::build(t, 3, 6400, 10, 0),
                ::testing::ExitedWithCode(1), "across 3 shards");
}

} // namespace
} // namespace firesim
