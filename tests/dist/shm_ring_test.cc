/**
 * @file
 * The shared-memory fabric in isolation: SPSC ring arithmetic (wrap,
 * backpressure, capacity rounding), a concurrent producer/consumer
 * integrity run (the TSan target — the ring's acquire/release pairing
 * is the entire cross-process synchronization story), and the ShmLink
 * handshake over a socketpair control channel, including lazy opener
 * attach, backpressure, peer-close detection, and segment cleanup.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <dirent.h>
#include <unistd.h>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/remote/shm_ring.hh"
#include "net/remote/socket.hh"

namespace firesim
{
namespace
{

TEST(ShmRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(shmRingCapacity(0), 4096u);
    EXPECT_EQ(shmRingCapacity(1), 4096u);
    EXPECT_EQ(shmRingCapacity(4096), 4096u);
    EXPECT_EQ(shmRingCapacity(4097), 8192u);
    EXPECT_EQ(shmRingCapacity(1u << 20), 1u << 20);
    EXPECT_EQ(shmRingCapacity((1u << 20) + 1), 2u << 20);
}

/** Heap-backed ring for the unit tests (the view doesn't care where
 *  the control words and data live). */
struct HeapRing
{
    ShmRingCtl ctl;
    std::vector<char> data;
    ShmRing ring;

    explicit HeapRing(size_t capacity) : data(capacity)
    {
        ctl.head.store(0);
        ctl.tail.store(0);
        ring = ShmRing(&ctl, data.data(), capacity);
    }
};

TEST(ShmRing, PushPopWrapsAndBackpressures)
{
    HeapRing hr(4096);
    ShmRing &r = hr.ring;
    EXPECT_EQ(r.freeBytes(), 4096u);
    EXPECT_EQ(r.readableBytes(), 0u);

    // Fill completely: push accepts exactly the free space, then 0.
    std::string chunk(3000, 'a');
    EXPECT_EQ(r.push(chunk.data(), chunk.size()), 3000u);
    EXPECT_EQ(r.push(chunk.data(), chunk.size()), 1096u);
    EXPECT_EQ(r.push(chunk.data(), 1), 0u);
    EXPECT_EQ(r.readableBytes(), 4096u);

    // Drain a prefix, refill across the wrap boundary, verify bytes
    // come out in order.
    char buf[2048];
    EXPECT_EQ(r.pop(buf, 2048), 2048u);
    std::string pattern;
    for (int i = 0; i < 2048; ++i)
        pattern.push_back(static_cast<char>('A' + i % 26));
    EXPECT_EQ(r.push(pattern.data(), pattern.size()), 2048u);
    EXPECT_EQ(r.pop(buf, 2048), 2048u); // the rest of the 'a's
    for (int i = 0; i < 2048; ++i)
        ASSERT_EQ(buf[i], 'a') << i;
    EXPECT_EQ(r.pop(buf, 2048), 2048u); // the wrapped pattern
    EXPECT_EQ(std::memcmp(buf, pattern.data(), 2048), 0);
    EXPECT_EQ(r.pop(buf, 1), 0u);
    EXPECT_EQ(r.freeBytes(), 4096u);
}

TEST(ShmRing, ConcurrentProducerConsumerPreservesByteStream)
{
    // One real producer thread against one consumer through a ring far
    // smaller than the stream, so head chases tail across thousands of
    // wraps. Run under ctest -L sanitize-thread this is the proof the
    // acquire/release pairing is complete.
    constexpr size_t kStream = 1 << 20;
    HeapRing hr(4096);
    ShmRing &r = hr.ring;

    std::thread producer([&r] {
        size_t sent = 0;
        char buf[257];
        while (sent < kStream) {
            size_t want = std::min(sizeof(buf), kStream - sent);
            for (size_t i = 0; i < want; ++i)
                buf[i] = static_cast<char>((sent + i) * 31 + 7);
            size_t n = r.push(buf, want);
            sent += n;
            if (n == 0)
                std::this_thread::yield();
        }
    });

    size_t got = 0;
    char buf[389];
    while (got < kStream) {
        size_t n = r.pop(buf, sizeof(buf));
        if (n == 0) {
            std::this_thread::yield();
            continue;
        }
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], static_cast<char>((got + i) * 31 + 7))
                << "stream corrupt at byte " << got + i;
        got += n;
    }
    producer.join();
    EXPECT_EQ(r.readableBytes(), 0u);
}

/** Count /dev/shm entries created by this process's shm links. */
size_t
liveShmSegments()
{
    std::string prefix = "fsim-shm-" + std::to_string(::getpid()) + "-";
    size_t live = 0;
    DIR *d = ::opendir("/dev/shm");
    if (!d)
        return 0; // no tmpfs view — cleanup is untestable here
    while (struct dirent *e = ::readdir(d))
        if (std::string(e->d_name).rfind(prefix, 0) == 0)
            ++live;
    ::closedir(d);
    return live;
}

TEST(ShmLink, HandshakeRoundTripAndCleanup)
{
    size_t before = liveShmSegments();
    auto [fd0, fd1] = localSocketPair();
    auto creator =
        makeShmLink(std::move(fd0), true, 1 << 16, "t0", {});
    auto opener =
        makeShmLink(std::move(fd1), false, 1 << 16, "t0", {});
    ASSERT_TRUE(creator && opener);
    EXPECT_EQ(creator->kind(), TransportKind::Shm);
    EXPECT_EQ(opener->kind(), TransportKind::Shm);

    // Creator -> opener: the opener attaches lazily on first use.
    std::string msg = "hello over the ring";
    ASSERT_EQ(creator->sendSome(msg.data(), msg.size()),
              static_cast<long>(msg.size()));
    ASSERT_EQ(opener->waitReadable(2000), 1);
    char buf[64];
    long n = opener->recvSome(buf, sizeof(buf));
    ASSERT_EQ(n, static_cast<long>(msg.size()));
    EXPECT_EQ(std::string(buf, n), msg);

    // Opener -> creator.
    std::string back = "and back";
    ASSERT_EQ(opener->sendSome(back.data(), back.size()),
              static_cast<long>(back.size()));
    ASSERT_EQ(creator->waitReadable(2000), 1);
    n = creator->recvSome(buf, sizeof(buf));
    ASSERT_EQ(n, static_cast<long>(back.size()));
    EXPECT_EQ(std::string(buf, n), back);

    // Host counters ride the link; sockets report none.
    const ShmLinkStats *stats = creator->shmStats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->bytesViaRing, msg.size());
    EXPECT_GE(stats->ringBytes, 1u << 16);

    // Attached on both sides: the name is already unlinked, so the
    // only /dev/shm growth allowed here is zero.
    EXPECT_EQ(liveShmSegments(), before);

    creator->close();
    opener->close();
    EXPECT_FALSE(creator->isOpen());
    EXPECT_EQ(liveShmSegments(), before) << "leaked shm segment";
}

TEST(ShmLink, RingFullBackpressuresThenDrains)
{
    auto [fd0, fd1] = localSocketPair();
    auto creator =
        makeShmLink(std::move(fd0), true, 4096, "bp", {});
    auto opener =
        makeShmLink(std::move(fd1), false, 4096, "bp", {});

    // The creator writes straight into the ring: a full ring returns
    // 0 from sendSome (never blocks, never errors).
    std::string blob(8192, 'x');
    size_t accepted = 0;
    for (int spins = 0; spins < 64 && accepted < blob.size(); ++spins) {
        long n = creator->sendSome(blob.data() + accepted,
                                   blob.size() - accepted);
        ASSERT_GE(n, 0);
        if (n == 0)
            break; // backpressure
        accepted += n;
    }
    EXPECT_GT(accepted, 0u);
    EXPECT_LT(accepted, blob.size()) << "4 KiB ring absorbed 8 KiB";
    const ShmLinkStats *stats = creator->shmStats();
    ASSERT_NE(stats, nullptr);
    EXPECT_GT(stats->txRingFullWaits, 0u);

    // Draining the consumer side frees the producer again.
    char sink[4096];
    ASSERT_EQ(opener->waitReadable(2000), 1);
    while (opener->recvSome(sink, sizeof(sink)) > 0) {
    }
    EXPECT_GT(creator->sendSome(blob.data(), 1024), 0);
    creator->close();
    opener->close();
}

TEST(ShmLink, PeerCloseReadsAsGoneAfterDrain)
{
    auto [fd0, fd1] = localSocketPair();
    auto creator =
        makeShmLink(std::move(fd0), true, 1 << 16, "pc", {});
    auto opener =
        makeShmLink(std::move(fd1), false, 1 << 16, "pc", {});

    // Attach the opener first (lazy — first receive does it): a
    // creator that closes before the opener ever attached would have
    // unlinked the name out from under it.
    std::string probe = "attach";
    ASSERT_EQ(creator->sendSome(probe.data(), probe.size()),
              static_cast<long>(probe.size()));
    ASSERT_EQ(opener->waitReadable(2000), 1);
    char buf[64];
    ASSERT_EQ(opener->recvSome(buf, sizeof(buf)),
              static_cast<long>(probe.size()));

    std::string last = "parting words";
    ASSERT_EQ(creator->sendSome(last.data(), last.size()),
              static_cast<long>(last.size()));
    creator->close();

    // Already-pushed bytes must still be readable after the peer
    // closed — only then does the link report peer-gone.
    ASSERT_EQ(opener->waitReadable(2000), 1);
    long n = opener->recvSome(buf, sizeof(buf));
    ASSERT_EQ(n, static_cast<long>(last.size()));
    EXPECT_EQ(std::string(buf, n), last);
    EXPECT_EQ(opener->recvSome(buf, sizeof(buf)), -1);
    EXPECT_EQ(opener->waitReadable(2000), -1);
    opener->close();
}

} // namespace
} // namespace firesim
