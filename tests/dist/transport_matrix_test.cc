/**
 * @file
 * The transport parity matrix: the same two-shard cluster run over
 * every bridge fabric — in-process loopback links, an AF_UNIX
 * socketpair, and the shared-memory rings — produces byte-identical
 * stripped stat dumps and byte-identical merged cross-shard telemetry.
 * The bridge moves the same bytes; only host mechanics differ. Plus
 * the cross-fabric snapshot contract (a snapshot taken over shm
 * restores into a socket-transport pair — loadSnapshot's internal
 * stats check is the byte-identity proof) and the shm peer-kill path
 * (SIGKILL mid-round degrades, never hangs, leaks no /dev/shm name).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "manager/checkpoint.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/remote/peer_link.hh"
#include "net/remote/socket.hh"
#include "snapshot/snapshot.hh"

namespace firesim
{
namespace
{

enum class Fabric
{
    Loopback,
    Unix,
    Shm,
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

ClusterConfig
shardConfig(uint32_t rank, Fabric fabric)
{
    ClusterConfig cc;
    cc.linkLatency = 400;
    cc.switchLatency = 10;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 2000;
    // Exercise the mid-run Stats piggyback on every fabric, so the
    // merged telemetry comparison covers the piggyback path too.
    cc.telemetry.aggregateEvery = 8;
    cc.shard.shards = 2;
    cc.shard.rank = rank;
    if (fabric == Fabric::Shm)
        cc.shard.transport = TransportKind::Shm;
    return cc;
}

void
spawnPinger(NodeSystem &from, size_t to_index)
{
    from.os().spawn("pinger", -1, [&from, to_index]() -> Task<> {
        while (true)
            co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

/** rank 0 owns global nodes 0,1; rank 1 owns 2,3 (as local 0,1). */
void
spawnWork(Cluster &clu, uint32_t rank)
{
    if (rank == 0) {
        spawnPinger(clu.node(0), 3); // cross-shard
        spawnPinger(clu.node(1), 0);
    } else {
        spawnPinger(clu.node(0), 1); // global 2 -> 1, cross-shard
    }
}

struct PairResult
{
    std::string dump[2]; //!< per-rank stripped stats dump
    std::string merged;  //!< rank 0's stripped merged telemetry
    TransportKind kind[2] = {TransportKind::Auto, TransportKind::Auto};
};

/** Run one two-shard pair over @p fabric; @p body drives each shard
 *  on its own thread. */
PairResult
runPair(Fabric fabric,
        const std::function<void(Cluster &, uint32_t)> &body)
{
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    std::vector<std::pair<uint32_t, std::unique_ptr<PeerLink>>> links0,
        links1;
    if (fabric == Fabric::Loopback) {
        auto [end0, end1] = loopbackLinkPair();
        links0.emplace_back(1, std::move(end0));
        links1.emplace_back(0, std::move(end1));
    } else {
        auto [fd0, fd1] = localSocketPair();
        fds0.emplace_back(1, std::move(fd0));
        fds1.emplace_back(0, std::move(fd1));
    }

    // Each rank needs a dump directory: the Stats piggyback provider
    // (non-zero ranks) and the rank-0 aggregator are both wired only
    // for dumping runs. Rank 0's directory collects the merged
    // cross-shard dumps the destructor writes after the final
    // exchange.
    static int pair_seq = 0;
    std::string dir[2];
    for (int r = 0; r < 2; ++r) {
        dir[r] = ::testing::TempDir() + "fs_matrix_r" +
                 std::to_string(r) + "_" + std::to_string(pair_seq);
        ::mkdir(dir[r].c_str(), 0755);
    }
    ++pair_seq;
    std::remove((dir[0] + "/merged_stats.json").c_str());

    PairResult out;
    auto runShard = [&](uint32_t rank) {
        ClusterConfig cc = shardConfig(rank, fabric);
        cc.telemetry.dumpDir = dir[rank];
        auto fds = rank == 0 ? std::move(fds0) : std::move(fds1);
        auto links = rank == 0 ? std::move(links0) : std::move(links1);
        std::unique_ptr<Cluster> clu;
        if (fabric == Fabric::Loopback)
            clu = std::make_unique<Cluster>(topologies::twoLevel(2, 2),
                                            std::move(cc),
                                            std::move(links));
        else
            clu = std::make_unique<Cluster>(topologies::twoLevel(2, 2),
                                            std::move(cc),
                                            std::move(fds));
        body(*clu, rank);
        out.kind[rank] = clu->shardTransport()->peerLinkAt(0)->kind();
        out.dump[rank] = stripHostTimingStats(
            clu->telemetry()->registry().dumpJson(clu->now()));
        // The mid-run piggyback (aggregateEvery) must already have
        // populated rank 1 before the final destructor-time exchange.
        if (rank == 0) {
            EXPECT_TRUE(clu->aggregator()->hasRank(1));
        }
    };
    std::thread shard1([&] { runShard(1); });
    runShard(0);
    shard1.join();
    out.merged =
        stripHostTimingStats(readFile(dir[0] + "/merged_stats.json"));
    return out;
}

TEST(TransportMatrix, StrippedStatsAndMergedTelemetryAreByteIdentical)
{
    constexpr Cycles kRun = 300000;
    auto body = [](Cluster &clu, uint32_t rank) {
        spawnWork(clu, rank);
        clu.run(kRun);
        EXPECT_FALSE(clu.shardTransport()->anyPeerLost());
    };

    PairResult un = runPair(Fabric::Unix, body);
    PairResult shm = runPair(Fabric::Shm, body);
    PairResult loop = runPair(Fabric::Loopback, body);

    // Each fabric really was what we asked for.
    EXPECT_EQ(un.kind[0], TransportKind::Unix);
    EXPECT_EQ(shm.kind[0], TransportKind::Shm);
    EXPECT_EQ(shm.kind[1], TransportKind::Shm);
    EXPECT_EQ(loop.kind[0], TransportKind::Loopback);

    // The invariant of the whole bridge layer: stripped stats are
    // byte-identical for every transport choice, per rank.
    ASSERT_FALSE(un.dump[0].empty());
    EXPECT_EQ(shm.dump[0], un.dump[0]);
    EXPECT_EQ(shm.dump[1], un.dump[1]);
    EXPECT_EQ(loop.dump[0], un.dump[0]);
    EXPECT_EQ(loop.dump[1], un.dump[1]);

    // And so is the merged cross-shard telemetry rank 0 assembles.
    ASSERT_FALSE(un.merged.empty());
    EXPECT_EQ(shm.merged, un.merged);
    EXPECT_EQ(loop.merged, un.merged);
}

TEST(TransportMatrix, ShmSnapshotRestoresIntoSocketPair)
{
    constexpr Cycles kSave = 200000, kTotal = 400000;
    std::string path = ::testing::TempDir() + "fsnp_matrix.snap";
    std::remove((path + ".rank0").c_str());
    std::remove((path + ".rank1").c_str());

    // Reference: an uninterrupted socket-transport run.
    PairResult ref = runPair(Fabric::Unix, [](Cluster &clu,
                                              uint32_t rank) {
        spawnWork(clu, rank);
        clu.run(kTotal);
    });

    // Save over shm mid-run, continue: still identical to the socket
    // reference.
    PairResult saved =
        runPair(Fabric::Shm, [&](Cluster &clu, uint32_t rank) {
            spawnWork(clu, rank);
            clu.run(kSave);
            ASSERT_EQ(clu.saveSnapshot(path), "") << "rank " << rank;
            clu.run(kTotal - kSave);
        });
    EXPECT_EQ(saved.dump[0], ref.dump[0]);
    EXPECT_EQ(saved.dump[1], ref.dump[1]);

    // Restore the shm-written snapshot into a fresh *socket* pair:
    // loadSnapshot verifies the stat dump byte-for-byte internally, so
    // a clean return here is the cross-fabric identity proof. The
    // recorded transport mix difference is a warning, never an error.
    PairResult restored =
        runPair(Fabric::Unix, [&](Cluster &clu, uint32_t rank) {
            spawnWork(clu, rank);
            ASSERT_EQ(resumeFromSnapshot(clu, path), "")
                << "rank " << rank;
            EXPECT_EQ(clu.now(), kSave);
            clu.run(kTotal - kSave);
        });
    EXPECT_EQ(restored.dump[0], ref.dump[0])
        << "rank 0 diverged after shm -> socket restore";
    EXPECT_EQ(restored.dump[1], ref.dump[1])
        << "rank 1 diverged after shm -> socket restore";

    std::remove((path + ".rank0").c_str());
    std::remove((path + ".rank1").c_str());
}

/** /dev/shm entries left by this process's shm links. */
size_t
liveShmSegments()
{
    std::string prefix = "fsim-shm-" + std::to_string(::getpid()) + "-";
    size_t live = 0;
    DIR *d = ::opendir("/dev/shm");
    if (!d)
        return 0;
    while (struct dirent *e = ::readdir(d))
        if (std::string(e->d_name).rfind(prefix, 0) == 0)
            ++live;
    ::closedir(d);
    return live;
}

TEST(TransportMatrix, ShmPeerKillDegradesWithoutHangOrLeak)
{
    constexpr Cycles kChildRun = 8000;
    constexpr Cycles kRun = 80000;
    size_t before = liveShmSegments();

    auto [fd0, fd1] = localSocketPair();
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Rank 1 in a real process: run a while over the shm rings,
        // then die with no Bye, no close, no destructor — the worst
        // case for segment cleanup and barrier liveness.
        { SocketFd drop = std::move(fd0); }
        std::vector<std::pair<uint32_t, SocketFd>> fds1;
        fds1.emplace_back(0, std::move(fd1));
        Cluster c1(topologies::singleTor(2), shardConfig(1, Fabric::Shm),
                   std::move(fds1));
        c1.run(kChildRun);
        ::raise(SIGKILL);
        ::_exit(0); // not reached
    }
    { SocketFd drop = std::move(fd1); }

    ClusterConfig cc0 = shardConfig(0, Fabric::Shm);
    cc0.shard.recvTimeoutMs = 5000;
    std::vector<std::pair<uint32_t, SocketFd>> fds0;
    fds0.emplace_back(1, std::move(fd0));
    uint64_t peer_lost = 0;
    {
        Cluster c0(topologies::singleTor(2), std::move(cc0),
                   std::move(fds0));
        spawnPinger(c0.node(0), 1); // cross-shard traffic

        EXPECT_EQ(c0.shardTransport()->peerLinkAt(0)->kind(),
                  TransportKind::Shm);
        c0.run(kRun); // must terminate degraded, not hang
        EXPECT_EQ(c0.now(), kRun);
        EXPECT_TRUE(c0.shardTransport()->anyPeerLost());
        peer_lost = c0.health().count(FaultEvent::Kind::PeerShardLost);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    EXPECT_EQ(peer_lost, 1u);

    // The rank-0 creator unlinked the segment when it reclaimed the
    // dead peer's link: a SIGKILL'd opener cannot leak the name.
    EXPECT_EQ(liveShmSegments(), before) << "stale shm segment left";
}

} // namespace
} // namespace firesim
