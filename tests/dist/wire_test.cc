/**
 * @file
 * Wire-framing tests for the distributed token fabric: every frame
 * type round-trips exactly, decode handles arbitrary stream splits
 * (TCP has no message boundaries), and malformed frames die loudly.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/random.hh"
#include "net/remote/wire.hh"

namespace firesim
{
namespace
{

TokenBatch
randomBatch(Random &rng, Cycles start, uint32_t len)
{
    TokenBatch b(start, len);
    uint32_t offset = 0;
    while (true) {
        offset += static_cast<uint32_t>(rng.range(1, 40));
        if (offset >= len)
            break;
        Flit f;
        f.offset = offset;
        f.size = static_cast<uint8_t>(rng.range(1, kFlitBytes));
        f.last = rng.below(4) == 0;
        for (uint8_t i = 0; i < f.size; ++i)
            f.data[i] = static_cast<uint8_t>(rng.next());
        b.push(f);
    }
    return b;
}

void
expectBatchEq(const TokenBatch &a, const TokenBatch &b)
{
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.len, b.len);
    ASSERT_EQ(a.flits.size(), b.flits.size());
    for (size_t i = 0; i < a.flits.size(); ++i) {
        EXPECT_EQ(a.flits[i].offset, b.flits[i].offset);
        EXPECT_EQ(a.flits[i].last, b.flits[i].last);
        EXPECT_EQ(a.flits[i].size, b.flits[i].size);
        EXPECT_EQ(a.flits[i].data, b.flits[i].data);
    }
}

TEST(Wire, HelloRoundTrips)
{
    std::string buf;
    encodeHello(buf, 3, 8, 0xdeadbeefcafef00dULL);
    size_t pos = 0;
    Frame f;
    ASSERT_TRUE(decodeFrame(buf, pos, f));
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(f.type, FrameType::Hello);
    EXPECT_EQ(f.version, kWireVersion);
    EXPECT_EQ(f.rank, 3u);
    EXPECT_EQ(f.shards, 8u);
    EXPECT_EQ(f.topoHash, 0xdeadbeefcafef00dULL);
}

TEST(Wire, RoundDoneAndByeRoundTrip)
{
    std::string buf;
    encodeRoundDone(buf, 41, 6400);
    encodeBye(buf);
    size_t pos = 0;
    Frame f;
    ASSERT_TRUE(decodeFrame(buf, pos, f));
    EXPECT_EQ(f.type, FrameType::RoundDone);
    EXPECT_EQ(f.round, 41u);
    EXPECT_EQ(f.cycle, 6400u);
    ASSERT_TRUE(decodeFrame(buf, pos, f));
    EXPECT_EQ(f.type, FrameType::Bye);
    EXPECT_EQ(pos, buf.size());
    EXPECT_FALSE(decodeFrame(buf, pos, f));
}

TEST(Wire, EmptyBatchIsTiny)
{
    // An idle link's batch — the common case — must stay a handful of
    // bytes or distributed idle time swamps the wire.
    std::string buf;
    encodeBatch(buf, 7, TokenBatch(0, 6400));
    EXPECT_LE(buf.size(), 8u);
    size_t pos = 0;
    Frame f;
    ASSERT_TRUE(decodeFrame(buf, pos, f));
    EXPECT_EQ(f.type, FrameType::Batch);
    EXPECT_EQ(f.linkId, 7u);
    EXPECT_EQ(f.batch.start, 0u);
    EXPECT_EQ(f.batch.len, 6400u);
    EXPECT_TRUE(f.batch.isEmpty());
}

TEST(Wire, BatchPropertyRoundTrip)
{
    Random rng(20260807);
    for (int iter = 0; iter < 200; ++iter) {
        Cycles start = rng.below(1u << 20) * 100;
        uint32_t len = static_cast<uint32_t>(rng.range(1, 400));
        TokenBatch in = randomBatch(rng, start, len);
        uint32_t link = static_cast<uint32_t>(rng.below(64));

        std::string buf;
        encodeBatch(buf, link, in);
        size_t pos = 0;
        Frame f;
        ASSERT_TRUE(decodeFrame(buf, pos, f));
        EXPECT_EQ(pos, buf.size());
        EXPECT_EQ(f.type, FrameType::Batch);
        EXPECT_EQ(f.linkId, link);
        expectBatchEq(f.batch, in);
    }
}

TEST(Wire, DecodeResumesAcrossArbitrarySplits)
{
    // Stream a mixed frame sequence one byte at a time: decodeFrame
    // must return false (and not move pos) until a frame completes,
    // then yield exactly the original sequence.
    Random rng(7);
    std::string full;
    encodeHello(full, 1, 2, 99);
    TokenBatch b = randomBatch(rng, 6400, 100);
    encodeBatch(full, 5, b);
    encodeRoundDone(full, 12, 76800);
    encodeBye(full);

    std::string partial;
    std::vector<Frame> seen;
    size_t pos = 0;
    for (char c : full) {
        partial.push_back(c);
        Frame f;
        size_t before = pos;
        while (decodeFrame(partial, pos, f))
            seen.push_back(f);
        if (seen.empty()) {
            EXPECT_EQ(pos, before);
        }
    }
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0].type, FrameType::Hello);
    EXPECT_EQ(seen[1].type, FrameType::Batch);
    expectBatchEq(seen[1].batch, b);
    EXPECT_EQ(seen[2].type, FrameType::RoundDone);
    EXPECT_EQ(seen[2].round, 12u);
    EXPECT_EQ(seen[3].type, FrameType::Bye);
}

TEST(WireDeath, MalformedFrameTypePanics)
{
    std::string buf;
    buf.push_back(static_cast<char>(0x7f)); // no such FrameType
    buf.push_back(0);                       // empty payload
    size_t pos = 0;
    Frame f;
    EXPECT_DEATH(decodeFrame(buf, pos, f), "");
}

} // namespace
} // namespace firesim
