/**
 * Cluster-level fault-injection properties from the issue:
 *  - a zero-fault FaultPlan leaves an 8-node cluster bit-identical to a
 *    run with no injector attached,
 *  - the same plan + seed replays bit-identically,
 *  - a crashed node degrades to empty-token emission: the surviving
 *    nodes' stats equal a run where that node simply never sent,
 *  - a downed switch port drops frames into the fault counters and
 *    shows up in the health report.
 */

#include <gtest/gtest.h>

#include "fault/fault_plan.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

/** 8-node single-ToR cluster with a quiet health monitor. */
std::unique_ptr<Cluster>
makeCluster(const FaultPlan *plan)
{
    ClusterConfig cc;
    auto cluster =
        std::make_unique<Cluster>(topologies::singleTor(8), cc);
    if (plan) {
        HealthConfig hc;
        hc.logEvents = false;
        cluster->health(hc);
        cluster->injectFaults(*plan);
    }
    return cluster;
}

/** Ping @p dst from @p src; returns the RTT in cycles (0 = no reply). */
Cycles
pingOnce(Cluster &cluster, size_t src, size_t dst, double budget_us)
{
    Cycles rtt = 0;
    NodeSystem &n = cluster.node(src);
    n.os().spawn("ping", -1, [&, dst]() -> Task<> {
        rtt = co_await n.net().ping(Cluster::ipFor(dst));
    });
    cluster.runUs(budget_us);
    return rtt;
}

TEST(ClusterFault, ZeroFaultPlanIsBitIdenticalToNoInjector)
{
    std::string reports[2];
    Cycles rtts[2];
    for (int with_plan = 0; with_plan < 2; ++with_plan) {
        FaultPlan empty;
        auto cluster = makeCluster(with_plan ? &empty : nullptr);
        rtts[with_plan] = pingOnce(*cluster, 0, 5, 300.0);
        reports[with_plan] = cluster->statsReport();
    }
    EXPECT_GT(rtts[0], 0u);
    EXPECT_EQ(rtts[0], rtts[1]);
    EXPECT_EQ(reports[0], reports[1]);
}

TEST(ClusterFault, SamePlanAndSeedReplaysBitIdentically)
{
    FaultPlan plan;
    plan.withSeed(2718)
        .dropPayload("node0", 0, 0, 0, 0.5)
        .crashNode("node3", 100000);
    std::string stats[2], health[2];
    for (int run = 0; run < 2; ++run) {
        auto cluster = makeCluster(&plan);
        pingOnce(*cluster, 0, 2, 300.0);
        stats[run] = cluster->statsReport();
        health[run] = cluster->healthReport();
    }
    EXPECT_EQ(stats[0], stats[1]);
    EXPECT_EQ(health[0], health[1]);
    // The plan actually did something (otherwise this test is vacuous).
    EXPECT_NE(health[0].find("node-crash"), std::string::npos);
}

TEST(ClusterFault, CrashedNodeEqualsNodeThatNeverSent)
{
    // Run A: node1 crashed from cycle 0. Run B: no faults; node1 is
    // simply idle. The survivors must see identical traffic.
    FaultPlan crash;
    crash.crashNode("node1", 0);
    auto crashed = makeCluster(&crash);
    auto baseline = makeCluster(nullptr);
    Cycles rtt_a = pingOnce(*crashed, 0, 2, 300.0);
    Cycles rtt_b = pingOnce(*baseline, 0, 2, 300.0);
    EXPECT_GT(rtt_a, 0u);
    EXPECT_EQ(rtt_a, rtt_b);
    for (size_t i = 0; i < crashed->nodeCount(); ++i) {
        if (i == 1)
            continue;
        const NicStats &a = crashed->node(i).blade().nic().stats();
        const NicStats &b = baseline->node(i).blade().nic().stats();
        EXPECT_EQ(a.framesSent.value(), b.framesSent.value()) << i;
        EXPECT_EQ(a.framesReceived.value(), b.framesReceived.value())
            << i;
        EXPECT_EQ(a.framesDroppedRx.value(), b.framesDroppedRx.value())
            << i;
    }
    // And the crashed node did nothing at all.
    const NicStats &dead = crashed->node(1).blade().nic().stats();
    EXPECT_EQ(dead.framesSent.value(), 0u);
}

TEST(ClusterFault, DownedPortDropsFramesIntoFaultCounters)
{
    FaultPlan plan;
    plan.portDown("switch0", 1, 0); // the port facing node1
    auto cluster = makeCluster(&plan);
    Cycles rtt = pingOnce(*cluster, 0, 1, 300.0);
    EXPECT_EQ(rtt, 0u); // echo request never crossed the switch
    EXPECT_FALSE(cluster->switchAt(0).portUp(1));
    const SwitchStats &st = cluster->switchAt(0).stats();
    EXPECT_GT(st.faultFlitsDroppedIn.value() +
                  st.faultPacketsDroppedOut.value(),
              0u);
    EXPECT_EQ(cluster->health().count(FaultEvent::Kind::PortDown), 1u);
    std::string report = cluster->healthReport();
    EXPECT_NE(report.find("port-down"), std::string::npos);
    EXPECT_NE(report.find("switch0"), std::string::npos);
}

TEST(ClusterFault, RestoredPortCarriesTrafficAgain)
{
    TargetClock clk(3.2);
    FaultPlan plan;
    plan.portDown("switch0", 1, 0, clk.cyclesFromUs(100.0));
    auto cluster = makeCluster(&plan);
    // While the port is down the ping is lost...
    Cycles rtt_down = pingOnce(*cluster, 0, 1, 150.0);
    EXPECT_EQ(rtt_down, 0u);
    // ...after the restore a fresh ping succeeds.
    Cycles rtt_up = pingOnce(*cluster, 2, 1, 150.0);
    EXPECT_GT(rtt_up, 0u);
    EXPECT_TRUE(cluster->switchAt(0).portUp(1));
    EXPECT_EQ(cluster->health().count(FaultEvent::Kind::PortRestored),
              1u);
}

TEST(ClusterFault, HealthReportWithoutMonitorSaysSo)
{
    auto cluster = makeCluster(nullptr);
    pingOnce(*cluster, 0, 1, 150.0);
    EXPECT_NE(cluster->healthReport().find("no monitor attached"),
              std::string::npos);
}

TEST(ClusterFaultDeath, DoubleInjectIsFatal)
{
    FaultPlan plan;
    plan.crashNode("node1", 0);
    auto cluster = makeCluster(&plan);
    EXPECT_EXIT(cluster->injectFaults(plan),
                ::testing::ExitedWithCode(1), "already has a fault plan");
}

TEST(ClusterFaultDeath, MonitorConfigIsFixedOnceAttached)
{
    auto cluster = makeCluster(nullptr);
    cluster->health();
    EXPECT_EXIT(cluster->health(HealthConfig{}),
                ::testing::ExitedWithCode(1), "already attached");
}

} // namespace
} // namespace firesim
