/**
 * Unit tests for the fault layer: FaultPlan builders, the deterministic
 * FaultInjector's link/crash faults on a two-endpoint fabric, and the
 * HealthMonitor's stall detection and graceful degradation.
 */

#include <gtest/gtest.h>

#include "fault/fault_plan.hh"
#include "fault/health_monitor.hh"
#include "fault/injector.hh"
#include "net/fabric.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

EthFrame
smallFrame(uint8_t tag)
{
    return EthFrame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw,
                    std::vector<uint8_t>{tag, 2, 3});
}

EthFrame
bigFrame(uint8_t tag)
{
    std::vector<uint8_t> payload(100);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<uint8_t>(tag + i);
    return EthFrame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw, payload);
}

TEST(FaultPlan, FluentBuildersAccumulate)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.withSeed(7)
        .dropPayload("a", 0, 100, 200, 0.5)
        .corruptFlits("b", 1)
        .extraLatency("c", 0, 50)
        .portDown("switch0", 2, 1000, 2000)
        .crashNode("d", 500);
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.eventCount(), 5u);
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.linkFaults.size(), 3u);
    EXPECT_EQ(plan.linkFaults[0].kind, LinkFaultKind::DropPayload);
    EXPECT_EQ(plan.linkFaults[0].from, 100u);
    EXPECT_EQ(plan.linkFaults[0].until, 200u);
    EXPECT_DOUBLE_EQ(plan.linkFaults[0].probability, 0.5);
    EXPECT_EQ(plan.linkFaults[2].kind, LinkFaultKind::ExtraLatency);
    EXPECT_EQ(plan.linkFaults[2].extraCycles, 50u);
    ASSERT_EQ(plan.portDowns.size(), 1u);
    EXPECT_EQ(plan.portDowns[0].restoreAt, 2000u);
    ASSERT_EQ(plan.crashes.size(), 1u);
    EXPECT_EQ(plan.crashes[0].endpoint, "d");
}

/** A-B pair with an injector interpreting @p plan. */
class InjectedPairTest : public ::testing::Test
{
  protected:
    static constexpr Cycles kLat = 200;

    void
    build(const FaultPlan &plan, bool with_monitor = false)
    {
        a = std::make_unique<ScriptedEndpoint>("A");
        b = std::make_unique<ScriptedEndpoint>("B");
        fabric.addEndpoint(a.get());
        fabric.addEndpoint(b.get());
        fabric.connect(a.get(), 0, b.get(), 0, kLat);
        fabric.finalize();
        if (with_monitor) {
            HealthConfig hc;
            hc.logEvents = false;
            monitor = std::make_unique<HealthMonitor>(fabric, hc);
        }
        injector = std::make_unique<FaultInjector>(fabric, plan,
                                                   monitor.get());
    }

    TokenFabric fabric;
    std::unique_ptr<ScriptedEndpoint> a, b;
    std::unique_ptr<HealthMonitor> monitor;
    std::unique_ptr<FaultInjector> injector;
};

TEST_F(InjectedPairTest, DropPayloadLosesTheFrameButNotTheTokens)
{
    FaultPlan plan;
    plan.dropPayload("A", 0);
    build(plan);
    a->sendAt(57, smallFrame(1)); // 3 flits
    fabric.run(1000);             // must not hang or abort
    EXPECT_TRUE(b->received.empty());
    EXPECT_EQ(injector->flitsDropped(), 3u);
    EXPECT_EQ(fabric.now(), 1000u);
}

TEST_F(InjectedPairTest, DropWindowIsPerFlitCycleExact)
{
    // Fault active for transmit cycles [0, 300): a frame straddling the
    // boundary (flits at 298, 299, 300) loses exactly the two flits
    // inside the window; the truncated tail still arrives (a real lossy
    // link corrupts frames mid-flight, it doesn't erase them cleanly).
    FaultPlan plan;
    plan.dropPayload("A", 0, 0, 300);
    build(plan);
    a->sendAt(298, smallFrame(1)); // 17 bytes: flits of 8, 8, 1 bytes
    a->sendAt(400, smallFrame(2)); // fully outside: arrives intact
    fabric.run(1000);
    EXPECT_EQ(injector->flitsDropped(), 2u);
    ASSERT_EQ(b->received.size(), 2u);
    // Only the 1-byte last flit of frame 1 survived.
    EXPECT_EQ(b->received[0].second.bytes.size(), 1u);
    EXPECT_EQ(b->received[0].first, 300u + kLat);
    // Frame 2 is untouched.
    EXPECT_EQ(b->received[1].second.payload()[0], 2);
    EXPECT_EQ(b->received[1].first, 402u + kLat);
}

TEST_F(InjectedPairTest, CorruptFlitsDeliversOnTimeWithDamage)
{
    FaultPlan plan;
    plan.corruptFlits("A", 0);
    build(plan);
    EthFrame sent = smallFrame(1);
    a->sendAt(57, sent);
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    // Delivery timing and length are untouched; the bytes are not.
    EXPECT_EQ(b->received[0].first, 57u + 2 + kLat);
    EXPECT_EQ(b->received[0].second.bytes.size(), sent.bytes.size());
    EXPECT_NE(b->received[0].second.bytes, sent.bytes);
    EXPECT_EQ(injector->flitsCorrupted(), 3u);
}

TEST_F(InjectedPairTest, ExtraLatencyShiftsArrivalExactly)
{
    FaultPlan plan;
    plan.extraLatency("A", 0, 50);
    build(plan);
    EthFrame sent = smallFrame(1);
    a->sendAt(57, sent);
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    // Last flit issued at 59 now carries its payload at 59 + 50.
    EXPECT_EQ(b->received[0].first, 59u + 50 + kLat);
    EXPECT_EQ(b->received[0].second.bytes, sent.bytes);
    EXPECT_EQ(injector->flitsDelayed(), 3u);
}

TEST_F(InjectedPairTest, ExtraLatencyCarriesPayloadAcrossBatches)
{
    // 57 + 150 = 207 lands in the *next* 200-cycle batch: the payload
    // must be re-emitted there, intact and in order.
    FaultPlan plan;
    plan.extraLatency("A", 0, 150);
    build(plan);
    EthFrame sent = smallFrame(1);
    a->sendAt(57, sent);
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    EXPECT_EQ(b->received[0].first, 59u + 150 + kLat);
    EXPECT_EQ(b->received[0].second.bytes, sent.bytes);
}

TEST_F(InjectedPairTest, CrashedEndpointDegradesToEmptyTokens)
{
    FaultPlan plan;
    plan.crashNode("A", 0);
    build(plan, /*with_monitor=*/true);
    b->sendAt(20, smallFrame(2)); // traffic *toward* the crashed node
    fabric.run(1000);
    // The fabric emitted empty batches on A's behalf: the run finished,
    // nothing arrived anywhere, and the crash is on record.
    EXPECT_EQ(fabric.now(), 1000u);
    EXPECT_TRUE(a->received.empty());
    EXPECT_TRUE(b->received.empty());
    EXPECT_EQ(monitor->count(FaultEvent::Kind::NodeCrash), 1u);
    EXPECT_EQ(monitor->roundsAdvanced(0), 0u);
    EXPECT_EQ(monitor->roundsAdvanced(1), 1000u / kLat);
}

TEST_F(InjectedPairTest, CrashRestartResumesService)
{
    FaultPlan plan;
    plan.crashNode("A", 0, 400);
    build(plan, /*with_monitor=*/true);
    a->sendAt(450, smallFrame(3)); // scripted after the restart
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    EXPECT_EQ(b->received[0].first, 452u + kLat);
    EXPECT_EQ(monitor->count(FaultEvent::Kind::NodeCrash), 1u);
    EXPECT_EQ(monitor->count(FaultEvent::Kind::NodeRestart), 1u);
    // Crashed for rounds [0, 400), alive for [400, 1000).
    EXPECT_EQ(monitor->roundsAdvanced(0), (1000u - 400u) / kLat);
}

TEST_F(InjectedPairTest, SameSeedReplaysBitIdentically)
{
    // Two independent runs of the same plan + seed must corrupt the
    // exact same bits; a different seed must not.
    auto run_once = [](uint64_t seed) {
        ScriptedEndpoint src("A"), dst("B");
        TokenFabric fab;
        fab.addEndpoint(&src);
        fab.addEndpoint(&dst);
        fab.connect(&src, 0, &dst, 0, kLat);
        fab.finalize();
        FaultPlan plan;
        plan.withSeed(seed).corruptFlits("A", 0, 0, 0, 0.5);
        FaultInjector inj(fab, plan);
        for (int i = 0; i < 10; ++i)
            src.sendAt(20 + 40 * i, bigFrame(static_cast<uint8_t>(i)));
        fab.run(2000);
        std::vector<uint8_t> stream;
        for (auto &[cycle, frame] : dst.received) {
            stream.push_back(static_cast<uint8_t>(cycle));
            stream.insert(stream.end(), frame.bytes.begin(),
                          frame.bytes.end());
        }
        return stream;
    };
    auto first = run_once(1234);
    EXPECT_EQ(first, run_once(1234));
    EXPECT_NE(first, run_once(99));
}

TEST_F(InjectedPairTest, ZeroFaultPlanIsBitIdenticalToNoInjector)
{
    // Property from the issue: an empty plan (and an idle monitor) must
    // leave the simulation bit-identical to a bare fabric.
    auto run_once = [](bool with_fault_layer) {
        ScriptedEndpoint src("A"), dst("B");
        TokenFabric fab;
        fab.addEndpoint(&src);
        fab.addEndpoint(&dst);
        fab.connect(&src, 0, &dst, 0, kLat);
        fab.finalize();
        std::unique_ptr<HealthMonitor> mon;
        std::unique_ptr<FaultInjector> inj;
        if (with_fault_layer) {
            HealthConfig hc;
            hc.logEvents = false;
            mon = std::make_unique<HealthMonitor>(fab, hc);
            inj = std::make_unique<FaultInjector>(fab, FaultPlan{},
                                                  mon.get());
        }
        for (int i = 0; i < 5; ++i) {
            src.sendAt(13 + 90 * i, smallFrame(static_cast<uint8_t>(i)));
            dst.sendAt(31 + 90 * i,
                       smallFrame(static_cast<uint8_t>(0x80 + i)));
        }
        fab.run(2000);
        std::vector<std::pair<Cycles, std::vector<uint8_t>>> seen;
        for (auto &[cycle, frame] : src.received)
            seen.emplace_back(cycle, frame.bytes);
        for (auto &[cycle, frame] : dst.received)
            seen.emplace_back(cycle, frame.bytes);
        if (mon)
            EXPECT_EQ(mon->totalEvents(), 0u);
        return seen;
    };
    EXPECT_EQ(run_once(false), run_once(true));
}

TEST(FaultInjectorDeath, UnknownEndpointIsFatal)
{
    ScriptedEndpoint a("A"), b("B");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.connect(&a, 0, &b, 0, 100);
    fabric.finalize();
    FaultPlan plan;
    plan.dropPayload("nope", 0);
    EXPECT_EXIT(FaultInjector(fabric, plan),
                ::testing::ExitedWithCode(1), "nope");
}

TEST(FaultInjectorDeath, PortDownNeedsASwitch)
{
    ScriptedEndpoint a("A"), b("B");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.connect(&a, 0, &b, 0, 100);
    fabric.finalize();
    FaultPlan plan;
    plan.portDown("A", 0, 100);
    EXPECT_EXIT(FaultInjector(fabric, plan),
                ::testing::ExitedWithCode(1), "not a switch");
}

/**
 * An endpoint that stops producing well-formed batches at a given
 * cycle: it overwrites its pre-sized output with a default-constructed
 * (zero-length) batch — the in-process analogue of a hung simulation
 * host that stops pumping tokens.
 */
class StallingEndpoint : public TokenEndpoint
{
  public:
    explicit StallingEndpoint(Cycles stall_at) : stallAt(stall_at) {}

    uint32_t numPorts() const override { return 1; }
    std::string name() const override { return "staller"; }

    void
    advance(Cycles window_start, Cycles,
            const std::vector<const TokenBatch *> &,
            std::vector<TokenBatch> &out) override
    {
        if (window_start >= stallAt)
            out[0] = TokenBatch(); // len 0: no tokens this round
    }

  private:
    Cycles stallAt;
};

TEST(HealthMonitorStall, StalledEndpointIsAStructuredEventNotAnAbort)
{
    StallingEndpoint staller(600);
    ScriptedEndpoint peer("peer");
    TokenFabric fabric;
    fabric.addEndpoint(&staller);
    fabric.addEndpoint(&peer);
    fabric.connect(&staller, 0, &peer, 0, 200);
    fabric.finalize();
    HealthConfig hc;
    hc.stallRoundBudget = 2;
    hc.logEvents = false;
    HealthMonitor monitor(fabric, hc);

    fabric.run(2000); // survives the stall

    // The stall is reported with endpoint name, port, and round number.
    ASSERT_GE(monitor.count(FaultEvent::Kind::BatchStall), 1u);
    const FaultEvent *stall = nullptr;
    for (const FaultEvent &ev : monitor.events())
        if (ev.kind == FaultEvent::Kind::BatchStall && !stall)
            stall = &ev;
    ASSERT_NE(stall, nullptr);
    EXPECT_EQ(stall->endpoint, "staller");
    EXPECT_EQ(stall->port, 0);
    EXPECT_EQ(stall->round, 600u / 200u);
    EXPECT_EQ(stall->cycle, 600u);
    EXPECT_NE(stall->detail.find("0-cycle batch"), std::string::npos);

    // Past the budget the endpoint is parked (graceful degradation) and
    // the fabric finishes the run on empty tokens.
    EXPECT_EQ(monitor.count(FaultEvent::Kind::EndpointDegraded), 1u);
    EXPECT_TRUE(monitor.isDegraded(0));
    EXPECT_EQ(monitor.degradedCount(), 1u);
    EXPECT_EQ(fabric.now(), 2000u);
    // 3 healthy rounds before cycle 600; budget burns 3 more (bad
    // rounds don't count as advanced); the rest are skipped.
    EXPECT_EQ(monitor.roundsAdvanced(0), 3u);
    std::string report = monitor.report();
    EXPECT_NE(report.find("DEGRADED"), std::string::npos);
    EXPECT_NE(report.find("staller"), std::string::npos);
}

TEST(HealthMonitorStallDeath, UnmonitoredStallStillAborts)
{
    // Without a monitor the old contract holds: a malformed batch is a
    // hard invariant failure, and the abort names the channel.
    StallingEndpoint staller(600);
    ScriptedEndpoint peer("peer");
    TokenFabric fabric;
    fabric.addEndpoint(&staller);
    fabric.addEndpoint(&peer);
    fabric.connect(&staller, 0, &peer, 0, 200);
    fabric.finalize();
    EXPECT_DEATH(fabric.run(2000), "staller:0->peer:0");
}

TEST(HealthMonitorStall, RecoveringEndpointKeepsItsBudget)
{
    // One bad round, then healthy again: consecutiveBad resets and the
    // endpoint is never degraded.
    class Hiccup : public TokenEndpoint
    {
      public:
        uint32_t numPorts() const override { return 1; }
        std::string name() const override { return "hiccup"; }
        void
        advance(Cycles window_start, Cycles,
                const std::vector<const TokenBatch *> &,
                std::vector<TokenBatch> &out) override
        {
            if (window_start == 400)
                out[0] = TokenBatch();
        }
    } hiccup;
    ScriptedEndpoint peer("peer");
    TokenFabric fabric;
    fabric.addEndpoint(&hiccup);
    fabric.addEndpoint(&peer);
    fabric.connect(&hiccup, 0, &peer, 0, 200);
    fabric.finalize();
    HealthConfig hc;
    hc.stallRoundBudget = 2;
    hc.logEvents = false;
    HealthMonitor monitor(fabric, hc);
    fabric.run(2000);
    EXPECT_EQ(monitor.count(FaultEvent::Kind::BatchStall), 1u);
    EXPECT_EQ(monitor.count(FaultEvent::Kind::EndpointDegraded), 0u);
    EXPECT_FALSE(monitor.isDegraded(0));
}

TEST(HealthMonitor, RogueBatchIsRecoveredAndReported)
{
    // Deliberately corrupt the token stream from outside (pushRaw skips
    // the contiguity check): the extra batch shifts the consumer one
    // round behind forever. The monitored fabric reports stale batches
    // plus the occupancy deviation and keeps running — late tokens are
    // delivered late — where the unmonitored fabric aborts.
    ScriptedEndpoint a("A"), b("B");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.connect(&a, 0, &b, 0, 200);
    fabric.finalize();
    HealthConfig hc;
    hc.logEvents = false;
    HealthMonitor monitor(fabric, hc);

    int chan = fabric.txChannelOf(0, 0); // A:0 -> B:0
    ASSERT_GE(chan, 0);
    fabric.channelAt(chan).pushRaw(TokenBatch(5000, 200));

    fabric.run(1000);
    EXPECT_EQ(fabric.now(), 1000u);
    EXPECT_GE(monitor.count(FaultEvent::Kind::StaleBatch), 1u);
    EXPECT_GE(monitor.count(FaultEvent::Kind::ChannelOccupancy), 1u);
    // The producer did nothing wrong: no degradation.
    EXPECT_EQ(monitor.degradedCount(), 0u);
}

} // namespace
} // namespace firesim
