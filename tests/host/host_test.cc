#include <gtest/gtest.h>

#include "host/deployment.hh"
#include "host/perf_model.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

TEST(Deployment, PaperDatacenterMapping)
{
    // Section V-C: 1024 nodes in supernode mode -> 256 FPGAs on 32
    // f1.16xlarge, plus 5 m4.16xlarge for 4 aggs + 1 root.
    SwitchSpec topo = topologies::threeLevel(4, 8, 32);
    DeploymentPlan plan = planDeployment(topo, true);
    EXPECT_EQ(plan.servers, 1024u);
    EXPECT_EQ(plan.fpgas, 256u);
    EXPECT_EQ(plan.f1_16xlarge, 32u);
    EXPECT_EQ(plan.m4_16xlarge, 5u);
    EXPECT_EQ(plan.torSwitches, 32u);
}

TEST(Deployment, PaperCostFigures)
{
    SwitchSpec topo = topologies::threeLevel(4, 8, 32);
    DeploymentPlan plan = planDeployment(topo, true);
    // ~$100/hour spot, ~$440/hour on-demand, $12.8M of FPGAs.
    EXPECT_NEAR(plan.spotPerHour(), 100.0, 5.0);
    EXPECT_NEAR(plan.onDemandPerHour(), 440.0, 5.0);
    EXPECT_DOUBLE_EQ(plan.fpgaCapex(), 12800000.0);
}

TEST(Deployment, StandardModeQuadruplesFpgas)
{
    SwitchSpec topo = topologies::threeLevel(4, 8, 32);
    DeploymentPlan std_plan = planDeployment(topo, false);
    DeploymentPlan super_plan = planDeployment(topo, true);
    EXPECT_EQ(std_plan.fpgas, 4u * super_plan.fpgas);
    EXPECT_GT(std_plan.onDemandPerHour(), super_plan.onDemandPerHour());
}

TEST(Deployment, SmallSimulationsUseF1_2xlarge)
{
    SwitchSpec topo = topologies::singleTor(1);
    DeploymentPlan plan = planDeployment(topo, false);
    EXPECT_EQ(plan.f1_2xlarge, 1u);
    EXPECT_EQ(plan.f1_16xlarge, 0u);
    EXPECT_EQ(plan.m4_16xlarge, 0u);
}

TEST(Deployment, UtilizationConstantsFromPaper)
{
    EXPECT_DOUBLE_EQ(FpgaUtilization::kSingleNodeLuts, 0.326);
    EXPECT_DOUBLE_EQ(FpgaUtilization::kSingleNodeBladeLuts, 0.144);
    EXPECT_DOUBLE_EQ(FpgaUtilization::kSupernodeBladeLuts, 0.577);
    EXPECT_DOUBLE_EQ(FpgaUtilization::kSupernodeTotalLuts, 0.76);
}

TEST(PerfModel, HitsThePaper1024NodeAnchor)
{
    // Headline result: 1024 nodes, 2 us / 200 Gbit/s network, simulated
    // at 3.42 MHz (< 1000x slowdown over real time).
    SwitchSpec topo = topologies::threeLevel(4, 8, 32);
    DeploymentPlan plan = planDeployment(topo, true);
    SimRateEstimate est = estimateSimRate(topo, plan, 6400, 3.2);
    EXPECT_NEAR(est.targetMhz, 3.42, 0.5);
    EXPECT_LT(est.slowdown(3.2), 1000.0);
}

TEST(PerfModel, RateFallsWithScale)
{
    // Figure 8's qualitative shape.
    double prev = 1e9;
    for (uint32_t tors : {1u, 2u, 4u, 8u}) {
        SwitchSpec topo = tors == 1 ? topologies::singleTor(8)
                                    : topologies::twoLevel(tors, 8);
        DeploymentPlan plan = planDeployment(topo, false);
        SimRateEstimate est = estimateSimRate(topo, plan, 6400, 3.2);
        EXPECT_LT(est.targetMhz, prev) << tors;
        prev = est.targetMhz;
    }
}

TEST(PerfModel, RateRisesWithLinkLatency)
{
    // Figure 9's qualitative shape: larger batches amortize fixed
    // transport costs.
    SwitchSpec topo = topologies::twoLevel(8, 8);
    DeploymentPlan plan = planDeployment(topo, false);
    double prev = 0.0;
    for (Cycles lat : {320u, 960u, 3200u, 6400u, 16000u, 32000u}) {
        SimRateEstimate est = estimateSimRate(topo, plan, lat, 3.2);
        EXPECT_GT(est.targetMhz, prev) << lat;
        prev = est.targetMhz;
    }
}

TEST(PerfModel, SupernodePaysPcieMultiplexingAtSmallScale)
{
    // Fig. 8: at equal node count the supernode config is somewhat
    // slower (4 nodes share one PCIe link) but needs 4x fewer hosts.
    SwitchSpec topo1 = topologies::singleTor(8);
    DeploymentPlan std_plan = planDeployment(topo1, false);
    SwitchSpec topo2 = topologies::singleTor(8);
    DeploymentPlan super_plan = planDeployment(topo2, true);
    SimRateEstimate std_est = estimateSimRate(topo1, std_plan, 6400, 3.2);
    SimRateEstimate sup_est = estimateSimRate(topo2, super_plan, 6400, 3.2);
    EXPECT_LE(sup_est.targetMhz, std_est.targetMhz);
    EXPECT_LT(super_plan.fpgas, std_plan.fpgas);
}

TEST(PerfModel, ExpectedRetryCostIsZeroOnLosslessTransport)
{
    HostFaultParams faults;
    EXPECT_DOUBLE_EQ(expectedRetryUs(faults), 0.0);
    // One retry tier: p * timeout.
    faults.batchLossProb = 0.1;
    faults.timeoutUs = 100.0;
    faults.maxRetries = 1;
    EXPECT_DOUBLE_EQ(expectedRetryUs(faults), 10.0);
    // Two tiers with backoff 2: p*t + p^2*2t.
    faults.maxRetries = 2;
    EXPECT_DOUBLE_EQ(expectedRetryUs(faults), 10.0 + 0.01 * 200.0);
}

TEST(PerfModel, RetryCostGrowsWithLossProbability)
{
    HostFaultParams faults;
    double prev = 0.0;
    for (double p : {0.001, 0.01, 0.1, 0.5, 0.9}) {
        faults.batchLossProb = p;
        double cost = expectedRetryUs(faults);
        EXPECT_GT(cost, prev) << p;
        prev = cost;
    }
}

TEST(PerfModel, NoDegradedHostsMeansNoPenalty)
{
    SwitchSpec topo = topologies::twoLevel(8, 8);
    DeploymentPlan plan = planDeployment(topo, false);
    SimRateEstimate clean = estimateSimRate(topo, plan, 6400, 3.2);
    HostFaultParams faults;
    faults.batchLossProb = 0.5; // irrelevant: nobody is degraded
    SimRateEstimate est = estimateSimRateDegraded(topo, plan, 6400, 3.2,
                                                  HostPerfParams{}, faults);
    EXPECT_DOUBLE_EQ(est.targetMhz, clean.targetMhz);
    EXPECT_DOUBLE_EQ(est.roundUs, clean.roundUs);
}

TEST(PerfModel, DegradedHostSlowsTheWholeSimulation)
{
    // The decoupled fabric advances at the pace of its slowest edge:
    // one lossy host taxes the global rate, and more loss taxes it
    // more.
    SwitchSpec topo = topologies::twoLevel(8, 8);
    DeploymentPlan plan = planDeployment(topo, false);
    SimRateEstimate clean = estimateSimRate(topo, plan, 6400, 3.2);
    double prev = clean.targetMhz;
    for (double p : {0.01, 0.1, 0.25}) {
        HostFaultParams faults;
        faults.batchLossProb = p;
        faults.degradedHosts = 1;
        SimRateEstimate est = estimateSimRateDegraded(
            topo, plan, 6400, 3.2, HostPerfParams{}, faults);
        EXPECT_LT(est.targetMhz, prev) << p;
        EXPECT_GT(est.roundUs, clean.roundUs) << p;
        prev = est.targetMhz;
    }
}

TEST(PerfModel, ReportsBottleneckBreakdown)
{
    SwitchSpec topo = topologies::threeLevel(4, 8, 32);
    DeploymentPlan plan = planDeployment(topo, true);
    SimRateEstimate est = estimateSimRate(topo, plan, 6400, 3.2);
    EXPECT_GT(est.bottleneckComputeUs, 0.0);
    EXPECT_GT(est.bottleneckTransportUs, 0.0);
    EXPECT_GE(est.roundUs,
              est.bottleneckComputeUs + est.bottleneckTransportUs);
}

} // namespace
} // namespace firesim
