/**
 * @file
 * End-to-end parallel determinism: a full 8-node cluster — blades, OS,
 * network stacks, switch, fault injection, health monitoring, and
 * telemetry — run with ClusterConfig::parallelHosts 1 vs 2/4/8 must
 * produce byte-identical simulation results AND byte-identical
 * telemetry artifacts (stats.json contents, autocounter.csv contents,
 * health and stats reports). This is the ISSUE's acceptance property
 * at the topmost layer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

struct ClusterDigest
{
    std::vector<Cycles> rtts;
    Cycles finalCycle = 0;
    uint64_t batchesMoved = 0;
    std::string statsJson;
    std::string counterCsv;
    std::string statsReport;
    std::string healthReport;
};

/**
 * Boot an 8-node single-ToR cluster with telemetry (registry +
 * AutoCounter sampler + host profiler for TSan coverage), optionally a
 * fault plan, run a ring of pings, and digest everything comparable.
 */
ClusterDigest
runCluster(unsigned hosts, bool with_faults)
{
    ClusterConfig cc;
    cc.parallelHosts = hosts;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 64000;
    // Host profiling is wall-clock (never compared byte-wise), but
    // enabling it puts the concurrent onAdvanceStart/End path under
    // test — with TSan watching in the sanitize-thread suite.
    cc.telemetry.hostProfile = true;

    auto cluster =
        std::make_unique<Cluster>(topologies::singleTor(8), cc);

    if (with_faults) {
        HealthConfig hc;
        hc.logEvents = false;
        cluster->health(hc);
        FaultPlan plan;
        plan.withSeed(31337)
            .dropPayload("node1", 0, 200000, 800000, 0.5)
            .crashNode("node3", 400000, 1200000)
            .corruptFlits("switch0", 2, 600000, 900000, 0.25);
        cluster->injectFaults(plan);
    }

    // Ring of pings: node i -> node (i+1) % 8, all in flight together.
    ClusterDigest d;
    d.rtts.assign(cluster->nodeCount(), 0);
    for (size_t i = 0; i < cluster->nodeCount(); ++i) {
        NodeSystem &n = cluster->node(i);
        size_t dst = (i + 1) % cluster->nodeCount();
        n.os().spawn("ping", -1, [&, i, dst]() -> Task<> {
            d.rtts[i] = co_await n.net().ping(Cluster::ipFor(dst));
        });
    }
    cluster->runUs(600.0);

    d.finalCycle = cluster->now();
    d.batchesMoved = cluster->fabric().batchesMoved();
    Telemetry *tel = cluster->telemetry();
    d.statsJson = tel->registry().dumpJson(cluster->now());
    d.counterCsv = tel->sampler()->csv();
    d.statsReport = cluster->statsReport();
    d.healthReport = cluster->healthReport();
    return d;
}

void
expectIdentical(const ClusterDigest &a, const ClusterDigest &b)
{
    EXPECT_EQ(a.rtts, b.rtts);
    EXPECT_EQ(a.finalCycle, b.finalCycle);
    EXPECT_EQ(a.batchesMoved, b.batchesMoved);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.counterCsv, b.counterCsv);
    EXPECT_EQ(a.statsReport, b.statsReport);
    EXPECT_EQ(a.healthReport, b.healthReport);
}

class ClusterParallelDeterminism
    : public ::testing::TestWithParam<unsigned /*hosts*/>
{
};

TEST_P(ClusterParallelDeterminism, TelemetryByteIdentical)
{
    ClusterDigest seq = runCluster(1, false);
    ClusterDigest par = runCluster(GetParam(), false);
    expectIdentical(seq, par);
    // Vacuity guards: traffic flowed and telemetry recorded it.
    for (Cycles rtt : seq.rtts)
        EXPECT_GT(rtt, 0u);
    EXPECT_NE(seq.counterCsv.find(','), std::string::npos);
    EXPECT_NE(seq.statsJson.find("framesTx"), std::string::npos);
}

TEST_P(ClusterParallelDeterminism, FaultsAndTelemetryByteIdentical)
{
    ClusterDigest seq = runCluster(1, true);
    ClusterDigest par = runCluster(GetParam(), true);
    expectIdentical(seq, par);
    // The plan actually fired (otherwise the property is vacuous).
    EXPECT_NE(seq.healthReport.find("node-crash"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ClusterParallelDeterminism,
                         ::testing::Values(2u, 4u, 8u));

} // namespace
} // namespace firesim
