/**
 * @file
 * Tests for the Section VII/VIII features: functional-network mode,
 * the BOOM core configuration, and FAME-5 host multithreading.
 */

#include <gtest/gtest.h>

#include "host/deployment.hh"
#include "host/perf_model.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "riscv/assembler.hh"
#include "riscv/core.hh"

namespace firesim
{
namespace
{

TEST(FunctionalNetwork, FramesStillFlow)
{
    // Section VII: purely functional networking still transports
    // Ethernet frames; only the timing is coarse.
    LogLevel prev = setLogLevel(LogLevel::Quiet);
    ClusterConfig cc;
    cc.functionalWindow = 64000; // 20 us windows
    Cluster cluster(topologies::singleTor(4), cc);
    setLogLevel(prev);

    bool replied = false;
    NodeSystem &server = cluster.node(0);
    NodeSystem &client = cluster.node(1);
    server.os().spawn("srv", -1, [&]() -> Task<> {
        UdpSocket sock(server.net(), 9);
        while (true) {
            Datagram d = co_await sock.recv();
            co_await sock.sendTo(d.srcIp, d.srcPort, d.data);
        }
    });
    client.os().spawn("cli", -1, [&]() -> Task<> {
        UdpSocket sock(client.net(), 10);
        std::vector<uint8_t> msg = {42};
        co_await sock.sendTo(Cluster::ipFor(0), 9, msg);
        Datagram d = co_await sock.recv();
        replied = d.data == msg;
        while (true)
            co_await client.os().sleepFor(1000000);
    });
    cluster.runUs(1000.0);
    EXPECT_TRUE(replied);
}

TEST(FunctionalNetwork, CutsHostRoundsByWindowRatio)
{
    // The point of the mode: far fewer host batch exchanges per cycle.
    auto batches_for = [](Cycles functional_window) {
        LogLevel prev = setLogLevel(LogLevel::Quiet);
        ClusterConfig cc;
        cc.functionalWindow = functional_window;
        Cluster cluster(topologies::singleTor(4), cc);
        setLogLevel(prev);
        cluster.run(640000);
        return cluster.fabric().batchesMoved();
    };
    uint64_t exact = batches_for(0);       // 2 us = 6400-cycle batches
    uint64_t loose = batches_for(64000);   // 10x bigger windows
    EXPECT_GE(exact, 9 * loose); // ~10x fewer exchanges
}

TEST(FunctionalNetwork, QuantizesRttToWindow)
{
    LogLevel prev = setLogLevel(LogLevel::Quiet);
    ClusterConfig cc;
    cc.functionalWindow = 320000; // 100 us windows
    Cluster cluster(topologies::singleTor(2), cc);
    setLogLevel(prev);
    Cycles rtt = 0;
    NodeSystem &a = cluster.node(0);
    a.os().spawn("ping", -1, [&]() -> Task<> {
        rtt = co_await a.net().ping(Cluster::ipFor(1));
    });
    cluster.runUs(5000.0);
    // RTT is now dominated by 4 window crossings, not the real 2 us
    // latency: accuracy traded for speed, as documented.
    EXPECT_GE(rtt, 4u * 320000u);
}

TEST(BoomCore, HigherIpcOnStraightLineCode)
{
    auto run_kernel = [](CoreConfig cfg) {
        FunctionalMemory mem(16 * MiB);
        MemHierarchy hier(1);
        RocketCore core(cfg, mem, hier, nullptr);
        Assembler a(mem, memmap::kDramBase);
        using namespace regs;
        a.li(t0, 20000);
        Assembler::Label loop = a.newLabel();
        a.bind(loop);
        for (int i = 0; i < 30; ++i)
            a.addi(a0, a0, 1);
        a.addi(t0, t0, -1);
        a.bne(t0, zero, loop);
        a.ecall(); // halt with a0 (no MMIO bus in this fixture)
        a.finalize();
        auto r = core.run();
        return static_cast<double>(r.instret) / r.cycles; // IPC
    };
    double rocket_ipc = run_kernel(CoreConfig{});
    double boom_ipc = run_kernel(CoreConfig::boom());
    EXPECT_GT(boom_ipc, 1.4 * rocket_ipc);
    EXPECT_GT(boom_ipc, 1.0); // genuinely superscalar
}

TEST(BoomCore, SameArchitecturalResults)
{
    // Timing config must not change functional behaviour.
    auto run_kernel = [](CoreConfig cfg) {
        FunctionalMemory mem(16 * MiB);
        MemHierarchy hier(1);
        RocketCore core(cfg, mem, hier, nullptr);
        Assembler a(mem, memmap::kDramBase);
        using namespace regs;
        a.li(a0, 1);
        a.li(a1, 1);
        a.li(t0, 30);
        Assembler::Label loop = a.newLabel();
        a.bind(loop);
        a.add(a2, a0, a1); // fibonacci
        a.mv(a0, a1);
        a.mv(a1, a2);
        a.addi(t0, t0, -1);
        a.bne(t0, zero, loop);
        a.mv(a0, a1);
        a.ecall(); // halt with a0 (no MMIO bus in this fixture)
        a.finalize();
        return core.run().exitCode;
    };
    EXPECT_EQ(run_kernel(CoreConfig{}), run_kernel(CoreConfig::boom()));
}

TEST(Fame5, PacksMoreNodesPerFpga)
{
    SwitchSpec topo = topologies::twoLevel(8, 32); // 256 nodes
    DeploymentPlan fame1 = planDeployment(topo, true, 1);
    DeploymentPlan fame5 = planDeployment(topo, true, 4);
    EXPECT_EQ(fame1.fpgas, 64u);
    EXPECT_EQ(fame5.fpgas, 16u);
    EXPECT_LT(fame5.onDemandPerHour(), fame1.onDemandPerHour());
}

TEST(Fame5, TradesSimulationRateForDensity)
{
    // "at the cost of simulation performance" (Section VIII).
    SwitchSpec topo = topologies::singleTor(8);
    DeploymentPlan fame1 = planDeployment(topo, false, 1);
    DeploymentPlan fame5 = planDeployment(topo, false, 4);
    SimRateEstimate r1 = estimateSimRate(topo, fame1, 6400, 3.2);
    SimRateEstimate r5 = estimateSimRate(topo, fame5, 6400, 3.2);
    EXPECT_LT(r5.targetMhz, r1.targetMhz);
}

TEST(Fame5Death, ZeroThreadsRejected)
{
    SwitchSpec topo = topologies::singleTor(2);
    EXPECT_EXIT(planDeployment(topo, false, 0),
                ::testing::ExitedWithCode(1), "FAME-5");
}

} // namespace
} // namespace firesim
