/**
 * @file
 * Integration tests asserting the evaluation *shapes* the benchmark
 * binaries reproduce, at test-suite scale: cross-layer latency steps
 * (Table III), inter-rack saturation (Figure 6), and end-to-end
 * determinism of a whole cluster run.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/baremetal_stream.hh"
#include "apps/memcached.hh"
#include "apps/mutilate.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

TEST(Shapes, MedianLatencyStepsByLayerCrossed)
{
    // Mini Table III: 3-level tree, one request path per pairing.
    ClusterConfig cc;
    cc.linkLatency = 6400;
    Cluster cluster(topologies::threeLevel(2, 2, 2), cc);
    // Node indices: agg0{tor0{0,1}, tor1{2,3}}, agg1{tor2{4,5}, ...}.
    Cycles same_tor = 0, cross_agg = 0, cross_dc = 0;
    NodeSystem &n0 = cluster.node(0);
    n0.os().spawn("probe", -1, [&]() -> Task<> {
        same_tor = co_await n0.net().ping(Cluster::ipFor(1));
        cross_agg = co_await n0.net().ping(Cluster::ipFor(2));
        cross_dc = co_await n0.net().ping(Cluster::ipFor(4));
    });
    cluster.runUs(1000.0);
    ASSERT_GT(same_tor, 0u);
    // Each extra layer crossed adds 4 links + 2 switch traversals
    // (25640 cycles ~ 8 us) to the round trip.
    double step1 = static_cast<double>(cross_agg) - same_tor;
    double step2 = static_cast<double>(cross_dc) - cross_agg;
    EXPECT_NEAR(step1, 4.0 * 6400 + 20.0, 1500.0);
    EXPECT_NEAR(step2, 4.0 * 6400 + 20.0, 1500.0);
}

TEST(Shapes, InterRackPathSaturatesAtLineRate)
{
    // Mini Figure 6: four unthrottled bare-metal senders behind one
    // ToR uplink; the root switch's egress cannot exceed line rate.
    std::vector<std::unique_ptr<ServerBlade>> blades;
    for (int i = 0; i < 8; ++i) {
        BladeConfig bc;
        bc.name = csprintf("n%d", i);
        bc.mac = MacAddr(0x200 + i);
        blades.push_back(std::make_unique<ServerBlade>(bc));
    }
    SwitchConfig scfg;
    scfg.ports = 5;
    Switch tor0(scfg), tor1(scfg);
    SwitchConfig rcfg;
    rcfg.ports = 2;
    Switch root(rcfg);

    TokenFabric fabric;
    for (auto &blade : blades)
        fabric.addEndpoint(blade.get());
    fabric.addEndpoint(&tor0);
    fabric.addEndpoint(&tor1);
    fabric.addEndpoint(&root);
    for (int i = 0; i < 4; ++i) {
        fabric.connect(blades[i].get(), 0, &tor0, i, 6400);
        fabric.connect(blades[4 + i].get(), 0, &tor1, i, 6400);
    }
    fabric.connect(&tor0, 4, &root, 0, 6400);
    fabric.connect(&tor1, 4, &root, 1, 6400);
    for (int i = 0; i < 8; ++i) {
        MacAddr mac(0x200 + i);
        tor0.addMacEntry(mac, i < 4 ? i : 4);
        tor1.addMacEntry(mac, i < 4 ? 4 : i - 4);
        root.addMacEntry(mac, i < 4 ? 0 : 1);
    }
    fabric.finalize();

    std::vector<BareMetalTxStats> txs(4);
    std::vector<BareMetalRxStats> rxs(4);
    for (int i = 0; i < 4; ++i) {
        launchBareMetalReceiver(*blades[4 + i], 0, MacAddr(0x200 + i),
                                &rxs[i]);
        BareMetalTxConfig cfg;
        cfg.dstMac = MacAddr(0x200 + 4 + i);
        cfg.frames = 0;
        cfg.frameBytes = 4096;
        launchBareMetalSender(*blades[i], cfg, &txs[i]);
    }
    // Warm up, then measure egress over 50 us.
    fabric.run(320000);
    root.takeBytesOutDelta();
    fabric.run(160000);
    double gbps = static_cast<double>(root.takeBytesOutDelta()) * 8.0 /
                  (160000.0 / 3.2);
    EXPECT_GT(gbps, 180.0);  // saturated...
    // Counting happens at whole-packet completion, so a window may
    // attribute a boundary packet entirely to itself: allow one frame
    // of slack above the 204.8 line rate.
    EXPECT_LE(gbps, 208.0);
}

TEST(Shapes, WholeClusterRunIsDeterministic)
{
    // End-to-end determinism: a loaded 4-node cluster run twice
    // produces identical statistics.
    auto run_once = [] {
        ClusterConfig cc;
        Cluster cluster(topologies::singleTor(4), cc);
        MemcachedConfig mc;
        MemcachedServer server(cluster.node(0), mc);
        server.start();
        MutilateConfig lc;
        lc.serverIp = Cluster::ipFor(0);
        lc.qps = 40000;
        MutilateClient client(cluster.node(1), lc);
        client.start();
        cluster.runUs(4000.0);
        return std::tuple<uint64_t, uint64_t, double, uint64_t>(
            client.stats().issued, client.stats().completed,
            client.stats().latencyCycles.mean(),
            cluster.rootSwitch().stats().bytesOut.value());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<0>(a), 100u);
}

} // namespace
} // namespace firesim
