#include <gtest/gtest.h>

#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

TEST(Topology, SingleTorCounts)
{
    SwitchSpec t = topologies::singleTor(8);
    EXPECT_EQ(t.serverCount(), 8u);
    EXPECT_EQ(t.switchCount(), 1u);
    EXPECT_EQ(t.levels(), 1u);
    EXPECT_EQ(t.downlinkCount(), 8u);
}

TEST(Topology, TwoLevelMatchesFigure1)
{
    // Figure 1: one root, 8 ToRs, 8 servers each = 64 nodes.
    SwitchSpec t = topologies::twoLevel(8, 8);
    EXPECT_EQ(t.serverCount(), 64u);
    EXPECT_EQ(t.switchCount(), 9u);
    EXPECT_EQ(t.levels(), 2u);
}

TEST(Topology, ThreeLevelMatchesFigure10)
{
    // Figure 10: root + 4 aggs + 32 ToRs, 32 servers per ToR = 1024.
    SwitchSpec t = topologies::threeLevel(4, 8, 32);
    EXPECT_EQ(t.serverCount(), 1024u);
    EXPECT_EQ(t.switchCount(), 1u + 4u + 32u);
    EXPECT_EQ(t.levels(), 3u);
}

TEST(Topology, CustomShapesCompose)
{
    SwitchSpec root;
    SwitchSpec *left = root.addSwitch();
    left->addServers(3);
    root.addServer(ServerSpec::singleCore()); // server directly on root
    EXPECT_EQ(root.serverCount(), 4u);
    EXPECT_EQ(root.downlinkCount(), 2u);
    EXPECT_EQ(root.levels(), 2u);
}

TEST(ClusterBuild, AddressAssignmentIsStable)
{
    EXPECT_EQ(Cluster::macFor(0).str(), "02:00:00:00:00:01");
    EXPECT_EQ(Cluster::macFor(255).str(), "02:00:00:00:01:00");
    EXPECT_EQ(ipStr(Cluster::ipFor(0)), "10.0.0.1");
    EXPECT_EQ(ipStr(Cluster::ipFor(299)), "10.0.1.44");
}

TEST(ClusterBuild, BuildsTheFigure1Cluster)
{
    ClusterConfig cc;
    Cluster cluster(topologies::twoLevel(8, 8), cc);
    EXPECT_EQ(cluster.nodeCount(), 64u);
    EXPECT_EQ(cluster.switchCount(), 9u);
    // Root switch has 8 downlinks.
    EXPECT_EQ(cluster.rootSwitch().config().ports, 8u);
    // A ToR has 8 server downlinks + 1 uplink.
    EXPECT_EQ(cluster.switchAt(1).config().ports, 9u);
}

TEST(ClusterBuild, MacTablesRouteTowardServers)
{
    ClusterConfig cc;
    Cluster cluster(topologies::twoLevel(2, 2), cc);
    // Build order: root(0), tor(1){node0,node1}, tor(2){node2,node3}.
    Switch &root = cluster.rootSwitch();
    EXPECT_EQ(root.lookupMac(Cluster::macFor(0)), std::optional<uint32_t>(0u));
    EXPECT_EQ(root.lookupMac(Cluster::macFor(3)), std::optional<uint32_t>(1u));
    Switch &tor0 = cluster.switchAt(1);
    // Downlinks 0,1 are its own servers; uplink is port 2.
    EXPECT_EQ(tor0.lookupMac(Cluster::macFor(0)), std::optional<uint32_t>(0u));
    EXPECT_EQ(tor0.lookupMac(Cluster::macFor(1)), std::optional<uint32_t>(1u));
    EXPECT_EQ(tor0.lookupMac(Cluster::macFor(2)), std::optional<uint32_t>(2u));
    EXPECT_EQ(tor0.lookupMac(Cluster::macFor(3)), std::optional<uint32_t>(2u));
}

TEST(ClusterBuild, CrossTorTrafficTraversesRoot)
{
    ClusterConfig cc;
    cc.linkLatency = 1000;
    Cluster cluster(topologies::twoLevel(2, 2), cc);
    // node0 (tor0) pings node2 (tor1): 8 link crossings + 4 switch hops
    // round trip. Compare with an intra-ToR ping (4 crossings, 2 hops).
    Cycles cross_rtt = 0, local_rtt = 0;
    NodeSystem &n0 = cluster.node(0);
    n0.os().spawn("ping", -1, [&]() -> Task<> {
        cross_rtt = co_await n0.net().ping(Cluster::ipFor(2));
        local_rtt = co_await n0.net().ping(Cluster::ipFor(1));
    });
    cluster.runUs(1000.0);
    ASSERT_GT(cross_rtt, 0u);
    ASSERT_GT(local_rtt, 0u);
    // The cross-ToR path adds 4 link latencies + 2 switch traversals.
    double extra = static_cast<double>(cross_rtt) -
                   static_cast<double>(local_rtt);
    EXPECT_NEAR(extra, 4.0 * 1000.0 + 2.0 * 10.0, 1500.0);
}

TEST(ClusterBuild, NodesSeeDistinctSeeds)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(3), cc);
    uint64_t a = cluster.node(0).os().random().next();
    uint64_t b = cluster.node(1).os().random().next();
    EXPECT_NE(a, b);
}

TEST(ClusterBuild, StatsReportCoversEveryComponent)
{
    ClusterConfig cc;
    Cluster cluster(topologies::twoLevel(2, 2), cc);
    Cycles rtt = 0;
    NodeSystem &n0 = cluster.node(0);
    n0.os().spawn("ping", -1, [&]() -> Task<> {
        rtt = co_await n0.net().ping(Cluster::ipFor(3));
    });
    cluster.runUs(300.0);
    ASSERT_GT(rtt, 0u);
    std::string report = cluster.statsReport();
    // Every switch and node appears, and the traffic shows up.
    for (size_t i = 0; i < cluster.switchCount(); ++i)
        EXPECT_NE(report.find(csprintf("switch%zu", i)),
                  std::string::npos);
    for (size_t i = 0; i < cluster.nodeCount(); ++i)
        EXPECT_NE(report.find(csprintf("node%zu", i)), std::string::npos);
    EXPECT_NE(report.find("10.0.0.1"), std::string::npos);
}

TEST(ClusterBuildDeath, EmptyRootRejected)
{
    SwitchSpec empty;
    ClusterConfig cc;
    EXPECT_EXIT(Cluster(std::move(empty), cc),
                ::testing::ExitedWithCode(1), "empty root");
}

} // namespace
} // namespace firesim
