#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace firesim
{
namespace
{

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    DramModel dram;
    EXPECT_LT(dram.rowHitLatency(), dram.rowMissLatency());
    // First access to a closed bank: row miss.
    Cycles first = dram.access(0x1000, false, 0);
    EXPECT_EQ(first, dram.rowMissLatency());
    // Same row immediately after: hit (plus possible bank busy wait).
    Cycles second = dram.access(0x1040, false, first + 100);
    EXPECT_EQ(second, dram.rowHitLatency());
    EXPECT_EQ(dram.stats().rowHits.value(), 1u);
    EXPECT_EQ(dram.stats().rowMisses.value(), 1u);
}

TEST(Dram, RowConflictPaysPrechargeActivate)
{
    DramConfig cfg;
    DramModel dram(cfg);
    uint64_t row_span = static_cast<uint64_t>(cfg.rowBytes) *
                        cfg.channels * cfg.ranksPerChannel *
                        cfg.banksPerRank;
    Cycles t = dram.access(0, false, 0); // open row 0 of bank 0
    // Same bank, different row: conflict.
    Cycles conflict = dram.access(row_span, false, t + 1000);
    EXPECT_GT(conflict, dram.rowMissLatency());
    EXPECT_EQ(dram.stats().rowConflicts.value(), 1u);
}

TEST(Dram, BankParallelismHidesLatency)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // Accesses to different banks at the same instant each see
    // closed-row latency; neither waits for the other.
    Cycles a = dram.access(0, false, 0);
    Cycles b = dram.access(cfg.rowBytes, false, 0); // next bank
    EXPECT_EQ(a, dram.rowMissLatency());
    EXPECT_EQ(b, dram.rowMissLatency());
}

TEST(Dram, SameBankBackToBackSerializes)
{
    DramModel dram;
    dram.access(0, false, 0);
    // Immediately issue another access to the same (now busy) bank:
    // latency includes the wait for the bank.
    Cycles second = dram.access(64, false, 0);
    EXPECT_GT(second, dram.rowHitLatency());
}

TEST(Cache, HitAfterMiss)
{
    DramModel dram;
    CacheConfig cfg;
    cfg.hitLatency = 2;
    Cache cache(cfg, nullptr, &dram);
    Cycles miss = cache.access(0x1000, 8, false, 0);
    EXPECT_GT(miss, cfg.hitLatency);
    Cycles hit = cache.access(0x1000, 8, false, miss);
    EXPECT_EQ(hit, cfg.hitLatency);
    EXPECT_EQ(cache.stats().hits.value(), 1u);
    EXPECT_EQ(cache.stats().misses.value(), 1u);
}

TEST(Cache, WholeLineIsCached)
{
    DramModel dram;
    Cache cache(CacheConfig{}, nullptr, &dram);
    cache.access(0x1000, 1, false, 0);
    // Any byte in the same 64-byte line hits.
    EXPECT_EQ(cache.access(0x103f, 1, false, 100), 2u);
    // The next line misses.
    EXPECT_GT(cache.access(0x1040, 1, false, 200), 2u);
}

TEST(Cache, StraddlingAccessTouchesBothLines)
{
    DramModel dram;
    Cache cache(CacheConfig{}, nullptr, &dram);
    cache.access(0x103c, 8, false, 0); // spans lines 0x1000 and 0x1040
    EXPECT_EQ(cache.stats().misses.value(), 2u);
}

TEST(Cache, LruEvictionOrder)
{
    DramModel dram;
    CacheConfig cfg;
    cfg.sizeBytes = 2 * 64; // 1 set, 2 ways
    cfg.ways = 2;
    Cache cache(cfg, nullptr, &dram);
    cache.access(0x0000, 8, false, 0);   // A
    cache.access(0x10000, 8, false, 10); // B (same set)
    cache.access(0x0000, 8, false, 20);  // touch A -> B becomes LRU
    cache.access(0x20000, 8, false, 30); // C evicts B
    EXPECT_EQ(cache.access(0x0000, 8, false, 40), cfg.hitLatency); // A hit
    EXPECT_GT(cache.access(0x10000, 8, false, 50), cfg.hitLatency); // B miss
}

TEST(Cache, DirtyEvictionWritesBack)
{
    DramModel dram;
    CacheConfig cfg;
    cfg.sizeBytes = 2 * 64;
    cfg.ways = 2;
    Cache cache(cfg, nullptr, &dram);
    cache.access(0x0000, 8, true, 0);    // dirty A
    cache.access(0x10000, 8, false, 10); // B
    cache.access(0x20000, 8, false, 20); // evicts dirty A
    EXPECT_EQ(cache.stats().writebacks.value(), 1u);
    EXPECT_GE(dram.stats().writes.value(), 1u);
}

TEST(Cache, TwoLevelMissGoesThroughL2)
{
    DramModel dram;
    CacheConfig l2c;
    l2c.sizeBytes = 256 * KiB;
    l2c.ways = 8;
    l2c.hitLatency = 12;
    Cache l2(l2c, nullptr, &dram);
    CacheConfig l1c;
    l1c.hitLatency = 2;
    Cache l1(l1c, &l2, nullptr);

    Cycles cold = l1.access(0x5000, 8, false, 0);
    EXPECT_GT(cold, l2c.hitLatency); // went to DRAM
    // Evict from L1 but not L2 by touching many same-set lines... use
    // flush to emulate an L1-only invalidation.
    l1.flush();
    Cycles l2hit = l1.access(0x5000, 8, false, 10000);
    EXPECT_EQ(l2hit, l1c.hitLatency + l2c.hitLatency);
}

TEST(MemHierarchyTest, TableIGeometry)
{
    MemHierarchy hier(4);
    EXPECT_EQ(hier.l1i(0).config().sizeBytes, 16 * KiB);
    EXPECT_EQ(hier.l1d(3).config().sizeBytes, 16 * KiB);
    EXPECT_EQ(hier.l2().config().sizeBytes, 256 * KiB);
}

TEST(MemHierarchyTest, SharedL2BetweenCores)
{
    MemHierarchy hier(2);
    // Core 0 warms the L2.
    hier.data(0, 0x9000, 8, false, 0);
    // Core 1 misses L1 but hits the shared L2.
    Cycles lat = hier.data(1, 0x9000, 8, false, 1000);
    EXPECT_EQ(lat, 2u + 12u);
}

TEST(CacheDeath, BadGeometryRejected)
{
    DramModel dram;
    CacheConfig cfg;
    cfg.lineBytes = 48; // not a power of two
    EXPECT_EXIT(Cache(cfg, nullptr, &dram), ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
} // namespace firesim
