/**
 * @file
 * Parameterized sweeps over cache geometry and DRAM behaviour —
 * property-style checks that hold for every legal configuration.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "base/random.hh"
#include "mem/cache.hh"

namespace firesim
{
namespace
{

using Geometry = std::tuple<uint64_t /*size*/, uint32_t /*ways*/>;

class CacheGeometrySweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometrySweep, WorkingSetWithinCapacityAlwaysHits)
{
    auto [size, ways] = GetParam();
    DramModel dram;
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.ways = ways;
    Cache cache(cfg, nullptr, &dram);

    // Touch exactly the capacity once (cold), then re-walk: only hits.
    uint64_t lines = size / cfg.lineBytes;
    for (uint64_t i = 0; i < lines; ++i)
        cache.access(i * cfg.lineBytes, 8, false, i);
    uint64_t cold_misses = cache.stats().misses.value();
    EXPECT_EQ(cold_misses, lines);
    for (uint64_t i = 0; i < lines; ++i)
        cache.access(i * cfg.lineBytes, 8, false, 100000 + i);
    EXPECT_EQ(cache.stats().misses.value(), cold_misses)
        << "capacity-resident re-walk must not miss";
}

TEST_P(CacheGeometrySweep, OverCapacityStreamsMiss)
{
    auto [size, ways] = GetParam();
    DramModel dram;
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.ways = ways;
    Cache cache(cfg, nullptr, &dram);

    // A cyclic stream of 2x capacity under LRU misses every time.
    uint64_t lines = 2 * size / cfg.lineBytes;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t i = 0; i < lines; ++i)
            cache.access(i * cfg.lineBytes, 8, false,
                         static_cast<Cycles>(pass) * 1000000 + i);
    EXPECT_EQ(cache.stats().hits.value(), 0u);
}

TEST_P(CacheGeometrySweep, RandomAccessesNeverCorruptState)
{
    auto [size, ways] = GetParam();
    DramModel dram;
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.ways = ways;
    Cache cache(cfg, nullptr, &dram);
    Random rng(size * 31 + ways);
    Cycles now = 0;
    for (int i = 0; i < 5000; ++i) {
        uint64_t addr = rng.below(1 << 22);
        Cycles lat = cache.access(addr, 1u + uint32_t(rng.below(8)),
                                  rng.chance(0.3), now);
        ASSERT_GE(lat, cfg.hitLatency);
        now += lat;
    }
    // Every access is accounted as a hit or miss (straddling accesses
    // count once per line touched).
    EXPECT_GE(cache.stats().hits.value() + cache.stats().misses.value(),
              5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(Geometry{4 * KiB, 1}, Geometry{4 * KiB, 4},
                      Geometry{16 * KiB, 4}, Geometry{16 * KiB, 8},
                      Geometry{64 * KiB, 2}, Geometry{256 * KiB, 8},
                      Geometry{256 * KiB, 16}));

class DramSweep : public ::testing::TestWithParam<uint32_t /*banks*/>
{
};

TEST_P(DramSweep, LatencyIsAlwaysBounded)
{
    DramConfig cfg;
    cfg.banksPerRank = GetParam();
    DramModel dram(cfg);
    Random rng(GetParam());
    Cycles now = 0;
    Cycles floor = dram.rowHitLatency();
    for (int i = 0; i < 2000; ++i) {
        Cycles lat = dram.access(rng.below(1 << 26) * 64,
                                 rng.chance(0.3), now);
        ASSERT_GE(lat, floor);
        // Closed loop (a blocking core): with no standing backlog, a
        // single access is bounded by one conflict chain.
        ASSERT_LT(lat, 100 * floor);
        now += lat;
    }
    EXPECT_EQ(dram.stats().reads.value() + dram.stats().writes.value(),
              2000u);
}

INSTANTIATE_TEST_SUITE_P(Banks, DramSweep, ::testing::Values(1, 2, 8, 16));

} // namespace
} // namespace firesim
