#include <gtest/gtest.h>

#include "mem/functional_memory.hh"

namespace firesim
{
namespace
{

TEST(FunctionalMemory, ReadsOfUntouchedMemoryAreZero)
{
    FunctionalMemory mem(1 * MiB);
    uint8_t buf[16];
    std::fill(std::begin(buf), std::end(buf), 0xff);
    mem.read(0x1234, buf, sizeof(buf));
    for (uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.allocatedPages(), 0u);
}

TEST(FunctionalMemory, WriteReadRoundTrip)
{
    FunctionalMemory mem(1 * MiB);
    std::vector<uint8_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    mem.write(0x8000, data.data(), data.size());
    std::vector<uint8_t> out(data.size());
    mem.read(0x8000, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, CrossPageAccesses)
{
    FunctionalMemory mem(1 * MiB);
    std::vector<uint8_t> data(FunctionalMemory::kPageBytes * 2 + 100, 0xab);
    uint64_t addr = FunctionalMemory::kPageBytes - 50;
    mem.write(addr, data.data(), data.size());
    std::vector<uint8_t> out(data.size());
    mem.read(addr, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(mem.allocatedPages(), 4u); // partial, 2 full, partial
}

TEST(FunctionalMemory, ScalarAccessorsLittleEndian)
{
    FunctionalMemory mem(64 * KiB);
    mem.write64(0x100, 0x0123456789abcdefULL);
    EXPECT_EQ(mem.read8(0x100), 0xefu);
    EXPECT_EQ(mem.read16(0x100), 0xcdefu);
    EXPECT_EQ(mem.read32(0x100), 0x89abcdefu);
    EXPECT_EQ(mem.read64(0x100), 0x0123456789abcdefULL);
    mem.write32(0x200, 0xdeadbeef);
    EXPECT_EQ(mem.read32(0x200), 0xdeadbeefu);
    mem.write16(0x300, 0xcafe);
    EXPECT_EQ(mem.read16(0x300), 0xcafeu);
    mem.write8(0x400, 0x5a);
    EXPECT_EQ(mem.read8(0x400), 0x5au);
}

TEST(FunctionalMemory, SparseAllocationStaysSmall)
{
    // The paper's blades have 16 GiB; touching a few pages must not
    // materialize the capacity.
    FunctionalMemory mem(16 * GiB);
    mem.write64(0, 1);
    mem.write64(8 * GiB, 2);
    mem.write64(16 * GiB - 8, 3);
    EXPECT_EQ(mem.allocatedPages(), 3u);
    EXPECT_EQ(mem.read64(8 * GiB), 2u);
}

TEST(FunctionalMemoryDeath, OutOfBoundsRejected)
{
    FunctionalMemory mem(4096);
    uint8_t b = 0;
    EXPECT_DEATH(mem.read(4096, &b, 1), "out of bounds");
    EXPECT_DEATH(mem.write(4090, &b, 8), "out of bounds");
}

TEST(FunctionalMemoryDeath, ZeroSizeRejected)
{
    EXPECT_EXIT(FunctionalMemory(0), ::testing::ExitedWithCode(1),
                "nonzero");
}

} // namespace
} // namespace firesim
