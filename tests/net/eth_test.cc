#include <gtest/gtest.h>

#include "net/eth.hh"

namespace firesim
{
namespace
{

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(MacAddr, MasksTo48Bits)
{
    MacAddr m(0xffff123456789abcULL);
    EXPECT_EQ(m.value, 0x123456789abcULL);
}

TEST(MacAddr, StringForm)
{
    EXPECT_EQ(MacAddr(0x0a0b0c0d0e0fULL).str(), "0a:0b:0c:0d:0e:0f");
    EXPECT_EQ(MacAddr::broadcast().str(), "ff:ff:ff:ff:ff:ff");
}

TEST(MacAddr, BroadcastDetection)
{
    EXPECT_TRUE(MacAddr::broadcast().isBroadcast());
    EXPECT_FALSE(MacAddr(1).isBroadcast());
}

TEST(EthFrame, HeaderRoundTrip)
{
    EthFrame f(MacAddr(0x1111), MacAddr(0x2222), EtherType::Ipv4,
               bytesOf("hello"));
    EXPECT_EQ(f.dst(), MacAddr(0x1111));
    EXPECT_EQ(f.src(), MacAddr(0x2222));
    EXPECT_EQ(f.etherType(), EtherType::Ipv4);
    EXPECT_EQ(f.payload(), bytesOf("hello"));
    EXPECT_EQ(f.size(), kEthHeaderBytes + 5);
}

TEST(EthFrame, FlitCountRoundsUp)
{
    // 14-byte header + 2-byte payload = 16 bytes = 2 flits.
    EthFrame a(MacAddr(1), MacAddr(2), EtherType::Raw, bytesOf("ab"));
    EXPECT_EQ(a.flitCount(), 2u);
    // 14 + 3 = 17 bytes -> 3 flits.
    EthFrame b(MacAddr(1), MacAddr(2), EtherType::Raw, bytesOf("abc"));
    EXPECT_EQ(b.flitCount(), 3u);
}

TEST(FrameCodec, SerializeAssembleRoundTrip)
{
    std::vector<uint8_t> payload;
    for (int i = 0; i < 100; ++i)
        payload.push_back(static_cast<uint8_t>(i * 7));
    EthFrame frame(MacAddr(0xaa), MacAddr(0xbb), EtherType::Raw, payload);

    FrameSerializer ser(frame);
    FrameAssembler asm_;
    EthFrame out;
    Cycles cycle = 1000;
    bool done = false;
    while (!ser.done()) {
        Flit flit = ser.next();
        done = asm_.feed(flit, cycle++, out);
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(out.bytes, frame.bytes);
    // Timestamp = arrival cycle of the last token.
    EXPECT_EQ(out.timestamp, cycle - 1);
}

TEST(FrameCodec, LastFlitMayBePartial)
{
    // 14 + 1 = 15 bytes: second flit holds 7 bytes.
    EthFrame frame(MacAddr(1), MacAddr(2), EtherType::Raw, bytesOf("x"));
    FrameSerializer ser(frame);
    Flit f1 = ser.next();
    EXPECT_EQ(f1.size, 8u);
    EXPECT_FALSE(f1.last);
    Flit f2 = ser.next();
    EXPECT_EQ(f2.size, 7u);
    EXPECT_TRUE(f2.last);
    EXPECT_TRUE(ser.done());
}

TEST(FrameCodec, SerializerRemainingCountsDown)
{
    EthFrame frame(MacAddr(1), MacAddr(2), EtherType::Raw,
                   std::vector<uint8_t>(50, 0));
    FrameSerializer ser(frame);
    EXPECT_EQ(ser.remaining(), frame.flitCount());
    ser.next();
    EXPECT_EQ(ser.remaining(), frame.flitCount() - 1);
}

TEST(FrameCodec, AssemblerTracksPartialState)
{
    EthFrame frame(MacAddr(1), MacAddr(2), EtherType::Raw,
                   std::vector<uint8_t>(20, 9));
    FrameSerializer ser(frame);
    FrameAssembler asm_;
    EthFrame out;
    EXPECT_FALSE(asm_.inProgress());
    asm_.feed(ser.next(), 0, out);
    EXPECT_TRUE(asm_.inProgress());
    asm_.reset();
    EXPECT_FALSE(asm_.inProgress());
}

TEST(FrameCodec, BackToBackFramesThroughOneAssembler)
{
    FrameAssembler asm_;
    for (int k = 0; k < 3; ++k) {
        std::vector<uint8_t> payload(10 + k, static_cast<uint8_t>(k));
        EthFrame frame(MacAddr(5), MacAddr(6), EtherType::Raw, payload);
        FrameSerializer ser(frame);
        EthFrame out;
        bool done = false;
        Cycles c = 0;
        while (!ser.done())
            done = asm_.feed(ser.next(), c++, out);
        ASSERT_TRUE(done);
        EXPECT_EQ(out.bytes, frame.bytes);
    }
}

} // namespace
} // namespace firesim
