/**
 * @file
 * Steady-state zero-allocation test for the token fabric's round loop.
 *
 * The fabric recycles flit storage round-to-round (TokenFabric's
 * FlitPool + ring-buffered TokenChannels), so once batch capacities
 * have warmed up, moving tokens allocates nothing — sequentially and
 * with a worker pool. This test replaces the global operator new to
 * count heap allocations inside a measurement window, which is why it
 * lives in its own test binary (test_fabric_alloc) and must not share
 * a process with other suites.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "net/fabric.hh"

namespace
{

std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void *
countedAlloc(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace firesim
{
namespace
{

/**
 * A minimal two-port endpoint emitting a fixed flit pattern on both
 * ports every window and checksumming everything it receives — steady
 * traffic with no per-frame bookkeeping, so any allocation in the
 * measurement window is the fabric's.
 */
class SteadyEndpoint : public TokenEndpoint
{
  public:
    explicit SteadyEndpoint(std::string name, uint32_t flits_per_batch)
        : label(std::move(name)), flitsPerBatch(flits_per_batch)
    {}

    uint32_t numPorts() const override { return 2; }
    std::string name() const override { return label; }

    void
    advance(Cycles window_start, Cycles window,
            const std::vector<const TokenBatch *> &in,
            std::vector<TokenBatch> &out) override
    {
        for (const TokenBatch *batch : in)
            for (const Flit &f : batch->flits)
                rxSum += batch->absCycle(f) + f.data[0];
        for (TokenBatch &batch : out) {
            for (uint32_t i = 0; i < flitsPerBatch; ++i) {
                Flit f;
                f.offset = i * static_cast<uint32_t>(window) /
                           (flitsPerBatch + 1);
                f.size = 8;
                f.last = (i + 1 == flitsPerBatch);
                f.data[0] = static_cast<uint8_t>(window_start + i);
                batch.push(f);
            }
        }
    }

    uint64_t rxSum = 0;

  private:
    std::string label;
    uint32_t flitsPerBatch;
};

/** No-op observer: forces the fabric onto its monitored code path. */
class NullObserver : public FabricObserver
{
};

struct Rig
{
    std::vector<std::unique_ptr<SteadyEndpoint>> eps;
    TokenFabric fabric;
    NullObserver watcher;

    explicit Rig(bool with_observer)
    {
        // Four endpoints in a ring: ep[i] port1 -> ep[i+1] port0.
        for (int i = 0; i < 4; ++i) {
            eps.push_back(std::make_unique<SteadyEndpoint>(
                csprintf("s%d", i), 5 + i));
            fabric.addEndpoint(eps.back().get());
        }
        for (int i = 0; i < 4; ++i)
            fabric.connect(eps[i].get(), 1, eps[(i + 1) % 4].get(), 0,
                           128);
        if (with_observer)
            fabric.addObserver(&watcher);
        fabric.finalize();
    }
};

void
expectSteadyStateZeroAllocs(bool with_observer, unsigned hosts,
                            SchedPolicy policy = SchedPolicy::RoundRobin)
{
    Rig rig(with_observer);
    rig.fabric.setParallelHosts(hosts);
    rig.fabric.setSchedPolicy(policy);

    // Warm-up: circulate enough rounds for every flit vector's capacity
    // and the recycling pool to reach steady state (pool creation and
    // worker spawning also land here).
    rig.fabric.run(rig.fabric.quantum() * 64);
    uint64_t misses_before = rig.fabric.batchAllocations();

    g_allocs.store(0);
    g_counting.store(true);
    rig.fabric.run(rig.fabric.quantum() * 256);
    g_counting.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << "heap allocations in the steady-state round loop (hosts="
        << hosts << ", observer=" << with_observer << ")";
    EXPECT_EQ(rig.fabric.batchAllocations(), misses_before)
        << "flit-pool misses kept growing after warm-up";
    // The traffic actually flowed.
    for (auto &ep : rig.eps)
        EXPECT_GT(ep->rxSum, 0u);
}

TEST(FabricAlloc, SequentialSteadyStateAllocatesNothing)
{
    expectSteadyStateZeroAllocs(false, 1);
}

TEST(FabricAlloc, MonitoredSteadyStateAllocatesNothing)
{
    expectSteadyStateZeroAllocs(true, 1);
}

TEST(FabricAlloc, ParallelSteadyStateAllocatesNothing)
{
    expectSteadyStateZeroAllocs(false, 4);
}

TEST(FabricAlloc, ParallelMonitoredSteadyStateAllocatesNothing)
{
    expectSteadyStateZeroAllocs(true, 4);
}

TEST(FabricAlloc, CostSchedulerSteadyStateAllocatesNothing)
{
    // The LPT repartition runs every round; its sort and plan buffers
    // must reach fixed capacity during warm-up.
    expectSteadyStateZeroAllocs(false, 4, SchedPolicy::Cost);
}

TEST(FabricAlloc, StealSchedulerSteadyStateAllocatesNothing)
{
    expectSteadyStateZeroAllocs(false, 4, SchedPolicy::Steal);
}

TEST(FabricAlloc, PoolMissesAreBounded)
{
    // Misses can only occur while capacities warm up: strictly fewer
    // than one per (endpoint, port, round) even in round one, and the
    // count must be identical for sequential and parallel runs.
    Rig a(false);
    a.fabric.run(a.fabric.quantum() * 32);
    uint64_t seq = a.fabric.batchAllocations();

    Rig b(false);
    b.fabric.setParallelHosts(4);
    b.fabric.run(b.fabric.quantum() * 32);
    EXPECT_EQ(seq, b.fabric.batchAllocations());
    EXPECT_GT(seq, 0u); // cold start does miss
    EXPECT_LT(seq, 8u * 32u);
}

} // namespace
} // namespace firesim
