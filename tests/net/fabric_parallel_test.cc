/**
 * @file
 * Parallel-fabric determinism property tests: the same topology run
 * sequentially and with 2/4/8 worker threads must produce bit-identical
 * results — final cycle, per-channel token streams, delivered frames,
 * and host-side counters. This is the acceptance bar for
 * TokenFabric::setParallelHosts (and what `ctest -L sanitize-thread`
 * hammers under TSan).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hh"
#include "switchmodel/switch.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

/**
 * Hashes every transmitted batch — channel, stamp, and full flit
 * payload — in commit order. Two runs with identical hashes moved
 * identical token streams through identical channels in the same
 * order (onTransmit fires on the driving thread in step order, for
 * any worker count).
 */
class StreamHashObserver : public FabricObserver
{
  public:
    uint64_t hash = 1469598103934665603ull;
    uint64_t transmits = 0;

    void
    onTransmit(size_t channel_idx, TokenBatch &batch) override
    {
        ++transmits;
        mix(channel_idx);
        mix(batch.start);
        mix(batch.len);
        for (const Flit &f : batch.flits) {
            mix(f.offset);
            mix(f.last ? 1 : 0);
            mix(f.size);
            for (uint8_t b : f.data)
                mix(b);
        }
    }

  private:
    void
    mix(uint64_t v)
    {
        hash ^= v;
        hash *= 1099511628211ull;
    }
};

struct RunDigest
{
    std::vector<std::pair<Cycles, size_t>> frames;
    uint64_t streamHash = 0;
    uint64_t transmits = 0;
    Cycles finalCycle = 0;
    uint64_t batchesMoved = 0;

    bool
    operator==(const RunDigest &o) const
    {
        return frames == o.frames && streamHash == o.streamHash &&
               transmits == o.transmits && finalCycle == o.finalCycle &&
               batchesMoved == o.batchesMoved;
    }
};

/**
 * A 10-endpoint topology (8 scripted nodes on two 4-port switches
 * joined by a trunk) with all-to-all scripted traffic, run for
 * `cycles` with the given worker count.
 */
RunDigest
runTopology(unsigned hosts, Cycles cycles)
{
    const Cycles lat = 200;

    SwitchConfig scfg;
    scfg.ports = 5; // 4 downlinks + trunk
    Switch swA(scfg), swB(scfg);
    std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
    TokenFabric fabric;
    for (int i = 0; i < 8; ++i) {
        eps.push_back(
            std::make_unique<ScriptedEndpoint>(csprintf("n%d", i)));
        fabric.addEndpoint(eps.back().get());
    }
    fabric.addEndpoint(&swA);
    fabric.addEndpoint(&swB);
    for (uint32_t i = 0; i < 8; ++i) {
        Switch &sw = i < 4 ? swA : swB;
        fabric.connect(eps[i].get(), 0, &sw, i % 4, lat);
    }
    fabric.connect(&swA, 4, &swB, 4, lat);
    for (uint32_t i = 0; i < 8; ++i) {
        swA.addMacEntry(MacAddr(i + 1), i < 4 ? i : 4);
        swB.addMacEntry(MacAddr(i + 1), i < 4 ? 4 : i % 4);
    }

    StreamHashObserver stream;
    fabric.addObserver(&stream);
    fabric.finalize();
    fabric.setParallelHosts(hosts);

    // All-to-all: node i sends to nodes i+1 and i+3 (mod 8), staggered
    // start cycles, distinct sizes, several waves.
    for (uint32_t i = 0; i < 8; ++i) {
        for (int wave = 0; wave < 3; ++wave) {
            EthFrame f1(MacAddr(((i + 1) % 8) + 1), MacAddr(i + 1),
                        EtherType::Raw,
                        std::vector<uint8_t>(40 + i * 11 + wave,
                                             uint8_t(i * 16 + wave)));
            EthFrame f3(MacAddr(((i + 3) % 8) + 1), MacAddr(i + 1),
                        EtherType::Raw,
                        std::vector<uint8_t>(60 + i * 7 + wave,
                                             uint8_t(i * 8 + wave)));
            eps[i]->sendAt(15 + i * 5 + wave * 900, f1);
            eps[i]->sendAt(450 + i * 5 + wave * 900, f3);
        }
    }

    fabric.run(cycles);

    RunDigest d;
    for (auto &ep : eps)
        for (auto &[cycle, frame] : ep->received)
            d.frames.emplace_back(cycle, frame.bytes.size());
    d.streamHash = stream.hash;
    d.transmits = stream.transmits;
    d.finalCycle = fabric.now();
    d.batchesMoved = fabric.batchesMoved();
    return d;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<unsigned /*hosts*/>
{
};

TEST_P(ParallelDeterminism, BitIdenticalToSequential)
{
    RunDigest seq = runTopology(1, 6000);
    RunDigest par = runTopology(GetParam(), 6000);
    EXPECT_EQ(seq, par);
    // The workload actually exercised the fabric.
    EXPECT_EQ(seq.frames.size(), 8u * 2u * 3u);
    EXPECT_GT(seq.transmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelDeterminism,
                         ::testing::Values(2u, 4u, 8u));

TEST(ParallelFabric, WorkerCountChangeableBetweenRuns)
{
    // One fabric, re-tuned between run() calls: the token streams keep
    // flowing and the result matches a pure sequential run end-to-end.
    RunDigest ref = runTopology(1, 6000);

    const Cycles lat = 200;
    SwitchConfig scfg;
    scfg.ports = 5;
    Switch swA(scfg), swB(scfg);
    std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
    TokenFabric fabric;
    for (int i = 0; i < 8; ++i) {
        eps.push_back(
            std::make_unique<ScriptedEndpoint>(csprintf("n%d", i)));
        fabric.addEndpoint(eps.back().get());
    }
    fabric.addEndpoint(&swA);
    fabric.addEndpoint(&swB);
    for (uint32_t i = 0; i < 8; ++i)
        fabric.connect(eps[i].get(), 0, i < 4 ? &swA : &swB, i % 4, lat);
    fabric.connect(&swA, 4, &swB, 4, lat);
    for (uint32_t i = 0; i < 8; ++i) {
        swA.addMacEntry(MacAddr(i + 1), i < 4 ? i : 4);
        swB.addMacEntry(MacAddr(i + 1), i < 4 ? 4 : i % 4);
    }
    StreamHashObserver stream;
    fabric.addObserver(&stream);
    fabric.finalize();
    for (uint32_t i = 0; i < 8; ++i) {
        for (int wave = 0; wave < 3; ++wave) {
            EthFrame f1(MacAddr(((i + 1) % 8) + 1), MacAddr(i + 1),
                        EtherType::Raw,
                        std::vector<uint8_t>(40 + i * 11 + wave,
                                             uint8_t(i * 16 + wave)));
            EthFrame f3(MacAddr(((i + 3) % 8) + 1), MacAddr(i + 1),
                        EtherType::Raw,
                        std::vector<uint8_t>(60 + i * 7 + wave,
                                             uint8_t(i * 8 + wave)));
            eps[i]->sendAt(15 + i * 5 + wave * 900, f1);
            eps[i]->sendAt(450 + i * 5 + wave * 900, f3);
        }
    }

    fabric.run(1400);
    fabric.setParallelHosts(4);
    fabric.run(2600);
    fabric.setParallelHosts(2);
    fabric.run(1200);
    fabric.setParallelHosts(1);
    fabric.run(800);

    RunDigest d;
    for (auto &ep : eps)
        for (auto &[cycle, frame] : ep->received)
            d.frames.emplace_back(cycle, frame.bytes.size());
    d.streamHash = stream.hash;
    d.transmits = stream.transmits;
    d.finalCycle = fabric.now();
    d.batchesMoved = fabric.batchesMoved();
    EXPECT_EQ(ref, d);
}

TEST(ParallelFabric, StepOrderStillIrrelevantWhenParallel)
{
    // Compose the two determinism licenses: permuted step order AND
    // parallel advance must still match the canonical sequential run.
    auto run_with = [](std::vector<size_t> order, unsigned hosts) {
        SwitchConfig cfg;
        cfg.ports = 4;
        Switch sw(cfg);
        std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
        TokenFabric fabric;
        for (int i = 0; i < 4; ++i) {
            eps.push_back(std::make_unique<ScriptedEndpoint>("e"));
            fabric.addEndpoint(eps.back().get());
        }
        fabric.addEndpoint(&sw);
        for (uint32_t i = 0; i < 4; ++i) {
            sw.addMacEntry(MacAddr(i + 1), i);
            fabric.connect(eps[i].get(), 0, &sw, i, 200);
        }
        if (!order.empty())
            fabric.setStepOrder(std::move(order));
        fabric.finalize();
        fabric.setParallelHosts(hosts);
        for (uint32_t i = 0; i < 4; ++i) {
            EthFrame f(MacAddr(((i + 1) % 4) + 1), MacAddr(i + 1),
                       EtherType::Raw,
                       std::vector<uint8_t>(40 + i * 10, uint8_t(i)));
            eps[i]->sendAt(10 + i * 3, f);
        }
        fabric.run(3000);
        std::vector<std::pair<Cycles, size_t>> digest;
        for (auto &ep : eps)
            for (auto &[cycle, frame] : ep->received)
                digest.emplace_back(cycle, frame.bytes.size());
        return digest;
    };

    auto reference = run_with({}, 1);
    EXPECT_EQ(reference.size(), 4u);
    EXPECT_EQ(reference, run_with({4, 2, 0, 3, 1}, 4));
    EXPECT_EQ(reference, run_with({3, 4, 1, 0, 2}, 8));
}

TEST(ParallelFabric, ParallelHostsAccessors)
{
    TokenFabric fabric;
    EXPECT_EQ(fabric.parallelHosts(), 1u);
    fabric.setParallelHosts(4);
    EXPECT_EQ(fabric.parallelHosts(), 4u);
    fabric.setParallelHosts(0); // 0 means "single-threaded", like 1
    EXPECT_EQ(fabric.parallelHosts(), 1u);
}

} // namespace
} // namespace firesim
