/**
 * @file
 * Determinism matrix for the sliced-advance round scheduler: the same
 * topology run across {1, 2, 8} workers x {monolithic, sliced switches}
 * x {rr, cost, steal} must produce bit-identical results — delivered
 * frames, token streams, switch statistics — and the same holds under
 * an active fault plan. A cluster-level variant asserts the telemetry
 * artifacts (stats.json, autocounter.csv, reports) stay byte-identical
 * too. This is the acceptance property of the AdvanceUnit refactor:
 * scheduling and slicing move host work around, never simulated state.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fault/injector.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/fabric.hh"
#include "switchmodel/switch.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

/** FNV-style hash of every transmitted batch in commit order (the
 *  same detector tests/net/fabric_parallel_test.cc uses). */
class StreamHashObserver : public FabricObserver
{
  public:
    uint64_t hash = 1469598103934665603ull;
    uint64_t transmits = 0;

    void
    onTransmit(size_t channel_idx, TokenBatch &batch) override
    {
        ++transmits;
        mix(channel_idx);
        mix(batch.start);
        mix(batch.len);
        for (const Flit &f : batch.flits) {
            mix(f.offset);
            mix(f.last ? 1 : 0);
            mix(f.size);
            for (uint8_t b : f.data)
                mix(b);
        }
    }

  private:
    void
    mix(uint64_t v)
    {
        hash ^= v;
        hash *= 1099511628211ull;
    }
};

struct RunDigest
{
    std::vector<std::pair<Cycles, size_t>> frames;
    uint64_t streamHash = 0;
    uint64_t transmits = 0;
    Cycles finalCycle = 0;
    uint64_t batchesMoved = 0;
    // Per-switch counters: in, out, dropped, bytes out, fault drops.
    std::vector<std::vector<uint64_t>> switchStats;
    uint64_t faultDropped = 0;
    uint64_t faultCorrupted = 0;

    bool
    operator==(const RunDigest &o) const
    {
        return frames == o.frames && streamHash == o.streamHash &&
               transmits == o.transmits && finalCycle == o.finalCycle &&
               batchesMoved == o.batchesMoved &&
               switchStats == o.switchStats &&
               faultDropped == o.faultDropped &&
               faultCorrupted == o.faultCorrupted;
    }
};

/**
 * The 10-endpoint two-switch topology from the parallel suite, with
 * configurable scheduling: @p slice_ports 0 keeps the switches
 * monolithic, 2 splits each 5-port switch into 3 advance slices.
 */
RunDigest
runFabric(unsigned hosts, SchedPolicy policy, uint32_t slice_ports,
          bool with_faults)
{
    const Cycles lat = 200;

    SwitchConfig scfg;
    scfg.ports = 5; // 4 downlinks + trunk
    scfg.slicePorts = slice_ports;
    scfg.name = "swA";
    Switch swA(scfg);
    scfg.name = "swB";
    Switch swB(scfg);
    std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
    TokenFabric fabric;
    for (int i = 0; i < 8; ++i) {
        eps.push_back(
            std::make_unique<ScriptedEndpoint>(csprintf("n%d", i)));
        fabric.addEndpoint(eps.back().get());
    }
    fabric.addEndpoint(&swA);
    fabric.addEndpoint(&swB);
    for (uint32_t i = 0; i < 8; ++i)
        fabric.connect(eps[i].get(), 0, i < 4 ? &swA : &swB, i % 4, lat);
    fabric.connect(&swA, 4, &swB, 4, lat);
    for (uint32_t i = 0; i < 8; ++i) {
        swA.addMacEntry(MacAddr(i + 1), i < 4 ? i : 4);
        swB.addMacEntry(MacAddr(i + 1), i < 4 ? 4 : i % 4);
    }

    StreamHashObserver stream;
    fabric.addObserver(&stream);
    fabric.finalize();
    fabric.setParallelHosts(hosts);
    fabric.setSchedPolicy(policy);

    if (slice_ports > 0 && slice_ports < scfg.ports) {
        // Vacuity guard: slicing actually decomposed the switches.
        EXPECT_GT(swA.advanceSliceCount(), 1u);
        EXPECT_GT(fabric.advanceUnitCount(), fabric.endpointCount());
    }

    std::unique_ptr<FaultInjector> injector;
    if (with_faults) {
        FaultPlan plan;
        plan.withSeed(0xfab5eed)
            .dropPayload("n1", 0, 1000, 3000, 0.5)
            .portDown("swA", 2, 2000, 4200)
            .crashNode("n3", 2500, 4500);
        injector = std::make_unique<FaultInjector>(fabric, plan);
    }

    for (uint32_t i = 0; i < 8; ++i) {
        for (int wave = 0; wave < 3; ++wave) {
            EthFrame f1(MacAddr(((i + 1) % 8) + 1), MacAddr(i + 1),
                        EtherType::Raw,
                        std::vector<uint8_t>(40 + i * 11 + wave,
                                             uint8_t(i * 16 + wave)));
            EthFrame f3(MacAddr(((i + 3) % 8) + 1), MacAddr(i + 1),
                        EtherType::Raw,
                        std::vector<uint8_t>(60 + i * 7 + wave,
                                             uint8_t(i * 8 + wave)));
            eps[i]->sendAt(15 + i * 5 + wave * 900, f1);
            eps[i]->sendAt(450 + i * 5 + wave * 900, f3);
        }
    }

    fabric.run(6000);

    RunDigest d;
    for (auto &ep : eps)
        for (auto &[cycle, frame] : ep->received)
            d.frames.emplace_back(cycle, frame.bytes.size());
    d.streamHash = stream.hash;
    d.transmits = stream.transmits;
    d.finalCycle = fabric.now();
    d.batchesMoved = fabric.batchesMoved();
    for (const Switch *sw : {&swA, &swB}) {
        const SwitchStats &st = sw->stats();
        d.switchStats.push_back({st.packetsIn.value(),
                                 st.packetsOut.value(),
                                 st.packetsDropped.value(),
                                 st.bytesOut.value(),
                                 st.faultPacketsDroppedOut.value()});
    }
    if (injector) {
        d.faultDropped = injector->flitsDropped();
        d.faultCorrupted = injector->flitsCorrupted();
    }
    return d;
}

using MatrixParam =
    std::tuple<unsigned /*hosts*/, SchedPolicy, uint32_t /*slicePorts*/>;

class SchedMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

TEST_P(SchedMatrix, BitIdenticalToMonolithicSequentialRR)
{
    auto [hosts, policy, slice_ports] = GetParam();
    RunDigest ref =
        runFabric(1, SchedPolicy::RoundRobin, 0, false);
    RunDigest got = runFabric(hosts, policy, slice_ports, false);
    EXPECT_EQ(ref, got);
    EXPECT_EQ(ref.frames.size(), 8u * 2u * 3u);
    EXPECT_GT(ref.transmits, 0u);
}

TEST_P(SchedMatrix, BitIdenticalUnderFaultInjection)
{
    auto [hosts, policy, slice_ports] = GetParam();
    RunDigest ref =
        runFabric(1, SchedPolicy::RoundRobin, 0, true);
    RunDigest got = runFabric(hosts, policy, slice_ports, true);
    EXPECT_EQ(ref, got);
    // The plan actually bit: payload was dropped and a port went down
    // (fault drops show up in the switch counters).
    EXPECT_GT(ref.faultDropped, 0u);
    uint64_t port_drops = 0;
    for (const auto &st : ref.switchStats)
        port_drops += st[4];
    EXPECT_GT(port_drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersPolicySlicing, SchedMatrix,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(SchedPolicy::RoundRobin,
                                         SchedPolicy::Cost,
                                         SchedPolicy::Steal),
                       ::testing::Values(0u, 2u)),
    [](const ::testing::TestParamInfo<MatrixParam> &info) {
        return csprintf("w%u_%s_%s", std::get<0>(info.param),
                        schedPolicyName(std::get<1>(info.param)),
                        std::get<2>(info.param) ? "sliced" : "mono");
    });

TEST(SchedFabric, AdvanceUnitCountReflectsSlicing)
{
    // Every switch port must be wired before finalize(), so give the
    // 5-port switch one blade per port.
    auto build = [](uint32_t slice_ports, size_t &units,
                    uint32_t &slices) {
        SwitchConfig scfg;
        scfg.ports = 5;
        scfg.slicePorts = slice_ports;
        Switch sw(scfg);
        std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
        TokenFabric fabric;
        fabric.addEndpoint(&sw);
        for (uint32_t p = 0; p < scfg.ports; ++p) {
            eps.push_back(std::make_unique<ScriptedEndpoint>(
                csprintf("e%u", p)));
            fabric.addEndpoint(eps.back().get());
            fabric.connect(eps.back().get(), 0, &sw, p, 100);
        }
        fabric.finalize();
        units = fabric.advanceUnitCount();
        slices = sw.advanceSliceCount();
    };

    size_t units = 0;
    uint32_t slices = 0;

    build(0, units, slices);
    EXPECT_EQ(slices, 1u); // 0 disables slicing
    EXPECT_EQ(units, 6u);  // one unit per endpoint

    build(2, units, slices);
    EXPECT_EQ(slices, 3u); // ceil(5 / 2)
    EXPECT_EQ(units, 8u);  // 5 blades + 3 switch slices

    build(8, units, slices);
    EXPECT_EQ(slices, 1u); // ports <= slicePorts: monolithic
    EXPECT_EQ(units, 6u);
}

TEST(SchedFabric, PolicyAccessorRoundTrips)
{
    TokenFabric fabric;
    EXPECT_EQ(fabric.schedPolicy(), SchedPolicy::RoundRobin);
    fabric.setSchedPolicy(SchedPolicy::Steal);
    EXPECT_EQ(fabric.schedPolicy(), SchedPolicy::Steal);
    fabric.setSchedPolicy(SchedPolicy::Cost);
    EXPECT_EQ(fabric.schedPolicy(), SchedPolicy::Cost);
}

// ---- Cluster-level: telemetry artifacts stay byte-identical ---------

struct ClusterDigest
{
    std::vector<Cycles> rtts;
    Cycles finalCycle = 0;
    uint64_t batchesMoved = 0;
    std::string statsJson;
    std::string counterCsv;
    std::string statsReport;
};

ClusterDigest
runCluster(unsigned hosts, SchedPolicy policy, uint32_t slice_ports)
{
    ClusterConfig cc;
    cc.parallelHosts = hosts;
    cc.schedPolicy = policy;
    cc.switchSlicePorts = slice_ports;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 64000;
    cc.telemetry.hostProfile = true; // exercises onSliceStart/End
    auto cluster =
        std::make_unique<Cluster>(topologies::singleTor(8), cc);

    ClusterDigest d;
    d.rtts.assign(cluster->nodeCount(), 0);
    for (size_t i = 0; i < cluster->nodeCount(); ++i) {
        NodeSystem &n = cluster->node(i);
        size_t dst = (i + 1) % cluster->nodeCount();
        n.os().spawn("ping", -1, [&, i, dst]() -> Task<> {
            d.rtts[i] = co_await n.net().ping(Cluster::ipFor(dst));
        });
    }
    cluster->runUs(400.0);

    d.finalCycle = cluster->now();
    d.batchesMoved = cluster->fabric().batchesMoved();
    Telemetry *tel = cluster->telemetry();
    d.statsJson = tel->registry().dumpJson(cluster->now());
    d.counterCsv = tel->sampler()->csv();
    d.statsReport = cluster->statsReport();
    return d;
}

TEST(SchedCluster, TelemetryByteIdenticalAcrossPolicyAndSlicing)
{
    // The 8-port ToR slices into 4 units at slicePorts=2; the digest
    // must match the monolithic single-threaded round-robin run for
    // every (policy, slicing) combination at 2 workers.
    ClusterDigest ref = runCluster(1, SchedPolicy::RoundRobin, 0);
    for (Cycles rtt : ref.rtts)
        EXPECT_GT(rtt, 0u);
    EXPECT_NE(ref.statsJson.find("framesTx"), std::string::npos);

    for (SchedPolicy policy : {SchedPolicy::RoundRobin, SchedPolicy::Cost,
                               SchedPolicy::Steal}) {
        for (uint32_t slice_ports : {0u, 2u}) {
            ClusterDigest got = runCluster(2, policy, slice_ports);
            EXPECT_EQ(ref.rtts, got.rtts)
                << schedPolicyName(policy) << "/" << slice_ports;
            EXPECT_EQ(ref.finalCycle, got.finalCycle);
            EXPECT_EQ(ref.batchesMoved, got.batchesMoved);
            EXPECT_EQ(ref.statsJson, got.statsJson);
            EXPECT_EQ(ref.counterCsv, got.counterCsv);
            EXPECT_EQ(ref.statsReport, got.statsReport);
        }
    }
}

} // namespace
} // namespace firesim
