/**
 * @file
 * Parameterized sweeps over the token fabric: the Section III-B2
 * delivery-cycle arithmetic must hold for every link latency, frame
 * size, and stepping order.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/random.hh"
#include "net/fabric.hh"
#include "switchmodel/switch.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

using SweepParam = std::tuple<Cycles /*latency*/, uint32_t /*payload*/>;

class WalkthroughSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(WalkthroughSweep, DeliveryCycleFormulaHolds)
{
    auto [lat, payload_bytes] = GetParam();
    const Cycles n = 10; // switch port-to-port latency

    SwitchConfig cfg;
    cfg.ports = 2;
    cfg.minLatency = n;
    Switch sw(cfg);
    sw.addMacEntry(MacAddr(0xa), 0);
    sw.addMacEntry(MacAddr(0xb), 1);
    ScriptedEndpoint a("A"), b("B");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.addEndpoint(&sw);
    fabric.connect(&a, 0, &sw, 0, lat);
    fabric.connect(&b, 0, &sw, 1, lat);
    fabric.finalize();

    EthFrame frame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw,
                   std::vector<uint8_t>(payload_bytes, 0x5a));
    const Cycles m = 13;
    a.sendAt(m, frame);
    fabric.run(8 * lat + 4 * frame.flitCount() + 1000);

    // Section III-B2: last token issued at m + flits - 1 arrives at the
    // switch l later; forwarded after n; the last token reaches B after
    // another l plus the serialization of the remaining flits.
    ASSERT_EQ(b.received.size(), 1u);
    Cycles last_tx = m + frame.flitCount() - 1;
    EXPECT_EQ(b.received[0].first,
              last_tx + 2 * lat + n + frame.flitCount() - 1);
    EXPECT_EQ(b.received[0].second.bytes, frame.bytes);
}

INSTANTIATE_TEST_SUITE_P(
    LatencyAndSize, WalkthroughSweep,
    ::testing::Combine(::testing::Values<Cycles>(32, 100, 640, 6400,
                                                 32000),
                       ::testing::Values<uint32_t>(4, 50, 500, 1400)));

class StepOrderSweep : public ::testing::TestWithParam<int /*perm seed*/>
{
};

TEST_P(StepOrderSweep, ResultsIndependentOfServiceOrder)
{
    // 4 endpoints on one switch, cross traffic, arbitrary step orders.
    Random rng(GetParam());
    std::vector<size_t> order = {0, 1, 2, 3, 4};
    for (size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    auto run_with = [](const std::vector<size_t> &step_order) {
        SwitchConfig cfg;
        cfg.ports = 4;
        Switch sw(cfg);
        std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
        TokenFabric fabric;
        for (int i = 0; i < 4; ++i) {
            eps.push_back(std::make_unique<ScriptedEndpoint>("e"));
            fabric.addEndpoint(eps.back().get());
        }
        fabric.addEndpoint(&sw);
        for (uint32_t i = 0; i < 4; ++i) {
            sw.addMacEntry(MacAddr(i + 1), i);
            fabric.connect(eps[i].get(), 0, &sw, i, 200);
        }
        if (!step_order.empty())
            fabric.setStepOrder(step_order);
        fabric.finalize();
        for (uint32_t i = 0; i < 4; ++i) {
            EthFrame f(MacAddr(((i + 1) % 4) + 1), MacAddr(i + 1),
                       EtherType::Raw,
                       std::vector<uint8_t>(40 + i * 10, uint8_t(i)));
            eps[i]->sendAt(10 + i * 3, f);
        }
        fabric.run(3000);
        std::vector<std::pair<Cycles, size_t>> digest;
        for (auto &ep : eps)
            for (auto &[cycle, frame] : ep->received)
                digest.emplace_back(cycle, frame.bytes.size());
        return digest;
    };

    auto reference = run_with({});
    auto permuted = run_with(order);
    EXPECT_EQ(reference, permuted);
    EXPECT_EQ(reference.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Permutations, StepOrderSweep,
                         ::testing::Range(1, 9));

} // namespace
} // namespace firesim
