#include <gtest/gtest.h>

#include "net/fabric.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

EthFrame
smallFrame(uint8_t tag)
{
    return EthFrame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw,
                    std::vector<uint8_t>{tag, 2, 3});
}

TEST(TokenChannel, SeedsLatencyWorthOfEmptyTokens)
{
    TokenChannel ch(6400, 6400);
    EXPECT_EQ(ch.depth(), 1u);
    TokenChannel ch2(6400, 1600);
    EXPECT_EQ(ch2.depth(), 4u);
    TokenBatch seed = ch2.pop();
    EXPECT_EQ(seed.start, 0u);
    EXPECT_TRUE(seed.isEmpty());
}

TEST(TokenChannel, RestampsProductionToArrivalTime)
{
    TokenChannel ch(100, 100);
    ch.pop(); // consume seed
    TokenBatch b(0, 100);
    Flit f;
    f.offset = 42;
    f.size = 8;
    f.last = true;
    b.push(f);
    ch.push(std::move(b));
    TokenBatch got = ch.pop();
    // Produced in window [0,100), consumed in arrival window [100,200):
    // a flit sent at cycle 42 arrives at cycle 142.
    EXPECT_EQ(got.start, 100u);
    EXPECT_EQ(got.absCycle(got.flits[0]), 142u);
}

TEST(TokenChannelDeath, WrongBatchLengthRejected)
{
    TokenChannel ch(100, 100);
    EXPECT_DEATH(ch.push(TokenBatch(0, 50)), "quantum");
}

TEST(TokenChannelDeath, QuantumMustDivideLatency)
{
    EXPECT_DEATH(TokenChannel(100, 33), "divide");
}

TEST(TokenChannelDeath, PopFromEmptyIsFatal)
{
    TokenChannel ch(100, 100);
    ch.setLabel("lonely");
    ch.pop(); // consume the seed batch
    EXPECT_DEATH(ch.pop(), "pop from empty token channel lonely");
}

TEST(TokenChannelDeath, NonContiguousPushNamesTheChannel)
{
    TokenChannel ch(100, 100);
    ch.setLabel("A:0->B:0");
    EXPECT_DEATH(ch.push(TokenBatch(50, 100)),
                 "non-contiguous batch push on A:0->B:0");
}

TEST(TokenChannelDeath, RawCorruptionDiesOnNonContiguousPop)
{
    // pushRaw deliberately skips the contiguity check; the consumer
    // still catches the corrupted stream.
    TokenChannel ch(100, 100);
    ch.setLabel("A:0->B:0");
    ch.pop();                          // consume the seed batch
    ch.pushRaw(TokenBatch(900, 100));  // stream expects start 0
    EXPECT_DEATH(ch.pop(), "non-contiguous batch pop on A:0->B:0");
}

TEST(TokenFabric, FinalizeLabelsEveryChannel)
{
    ScriptedEndpoint a("A"), b("B");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.connect(&a, 0, &b, 0, 100);
    fabric.finalize();
    ASSERT_EQ(fabric.channelCount(), 2u);
    int ab = fabric.txChannelOf(0, 0);
    int ba = fabric.txChannelOf(1, 0);
    ASSERT_GE(ab, 0);
    ASSERT_GE(ba, 0);
    EXPECT_EQ(fabric.channelAt(ab).label(), "A:0->B:0");
    EXPECT_EQ(fabric.channelAt(ba).label(), "B:0->A:0");
}

class FabricPairTest : public ::testing::Test
{
  protected:
    static constexpr Cycles kLat = 200;

    void
    build(Cycles latency = kLat)
    {
        a = std::make_unique<ScriptedEndpoint>("A");
        b = std::make_unique<ScriptedEndpoint>("B");
        fabric.addEndpoint(a.get());
        fabric.addEndpoint(b.get());
        fabric.connect(a.get(), 0, b.get(), 0, latency);
        fabric.finalize();
    }

    TokenFabric fabric;
    std::unique_ptr<ScriptedEndpoint> a, b;
};

TEST_F(FabricPairTest, FlitSentAtMArrivesAtMPlusN)
{
    build();
    // Paper III-B2: "if a network endpoint issues a token at cycle M,
    // the token arrives at the other side at cycle M + N."
    EthFrame frame = smallFrame(1); // 17 bytes -> 3 flits
    const Cycles m = 57;
    a->sendAt(m, frame);
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    // Last token issued at m + 2, so it arrives at m + 2 + kLat.
    EXPECT_EQ(b->received[0].first, m + 2 + kLat);
    EXPECT_EQ(b->received[0].second.bytes, frame.bytes);
}

TEST_F(FabricPairTest, BothDirectionsCarryTraffic)
{
    build();
    a->sendAt(10, smallFrame(1));
    b->sendAt(20, smallFrame(2));
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    ASSERT_EQ(a->received.size(), 1u);
    EXPECT_EQ(a->received[0].second.payload()[0], 2);
    EXPECT_EQ(b->received[0].second.payload()[0], 1);
}

TEST_F(FabricPairTest, QuantumIsMinLatency)
{
    build();
    EXPECT_EQ(fabric.quantum(), kLat);
}

TEST_F(FabricPairTest, RunAdvancesGlobalTime)
{
    build();
    fabric.run(3 * kLat);
    EXPECT_EQ(fabric.now(), 3 * kLat);
}

TEST_F(FabricPairTest, BatchCountTracksHostTraffic)
{
    build();
    fabric.run(5 * kLat);
    // 2 endpoints x 1 port x 5 rounds = 10 batch pushes.
    EXPECT_EQ(fabric.batchesMoved(), 10u);
}

TEST(TokenFabric, StepOrderDoesNotChangeResults)
{
    // Decoupled determinism: permuting the endpoint service order must
    // produce identical delivery cycles.
    std::vector<std::pair<Cycles, size_t>> results[2];
    for (int perm = 0; perm < 2; ++perm) {
        ScriptedEndpoint a("A"), b("B");
        TokenFabric fabric;
        fabric.addEndpoint(&a);
        fabric.addEndpoint(&b);
        fabric.connect(&a, 0, &b, 0, 128);
        if (perm == 1)
            fabric.setStepOrder({1, 0});
        fabric.finalize();
        a.sendAt(13, smallFrame(9));
        a.sendAt(400, smallFrame(8));
        b.sendAt(77, smallFrame(7));
        fabric.run(2000);
        for (auto &[cycle, frame] : a.received)
            results[perm].emplace_back(cycle, frame.bytes.size());
        for (auto &[cycle, frame] : b.received)
            results[perm].emplace_back(cycle, frame.bytes.size());
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_FALSE(results[0].empty());
}

TEST(TokenFabric, MixedCommensurateLatencies)
{
    // Three endpoints in a line with latencies 100 and 300: the fabric
    // batches by 100 and seeds the longer link with 3 in-flight batches.
    ScriptedEndpoint a("A"), b("B");
    class Relay : public TokenEndpoint
    {
      public:
        uint32_t numPorts() const override { return 2; }
        std::string name() const override { return "relay"; }
        void
        advance(Cycles, Cycles, const std::vector<const TokenBatch *> &in,
                std::vector<TokenBatch> &out) override
        {
            // Zero-cycle repeater: copy tokens across at the same offsets.
            for (int p = 0; p < 2; ++p)
                for (const Flit &f : in[p]->flits)
                    out[1 - p].push(f);
        }
    } relay;

    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.addEndpoint(&relay);
    fabric.connect(&a, 0, &relay, 0, 100);
    fabric.connect(&relay, 1, &b, 0, 300);
    fabric.finalize();
    EXPECT_EQ(fabric.quantum(), 100u);

    a.sendAt(5, smallFrame(1));
    fabric.run(2000);
    ASSERT_EQ(b.received.size(), 1u);
    // last flit at cycle 7, +100 through link 1, +300 through link 2.
    EXPECT_EQ(b.received[0].first, 7u + 100 + 300);
}

TEST(TokenFabricDeath, UnconnectedPortIsFatal)
{
    ScriptedEndpoint a("A");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    EXPECT_EXIT(fabric.finalize(), ::testing::ExitedWithCode(1), "");
}

TEST(TokenFabricDeath, DoubleConnectIsFatal)
{
    ScriptedEndpoint a("A"), b("B"), c("C");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.addEndpoint(&c);
    fabric.connect(&a, 0, &b, 0, 100);
    EXPECT_EXIT(fabric.connect(&a, 0, &c, 0, 100),
                ::testing::ExitedWithCode(1), "already connected");
}

TEST(TokenFabricDeath, IncommensurateLatenciesAreFatal)
{
    ScriptedEndpoint a("A"), b("B"), c("C"), d("D");
    TokenFabric fabric;
    fabric.addEndpoint(&a);
    fabric.addEndpoint(&b);
    fabric.addEndpoint(&c);
    fabric.addEndpoint(&d);
    fabric.connect(&a, 0, &b, 0, 100);
    fabric.connect(&c, 0, &d, 0, 150);
    EXPECT_EXIT(fabric.finalize(), ::testing::ExitedWithCode(1),
                "not a multiple");
}

} // namespace
} // namespace firesim
