/**
 * @file
 * Test helper: a single-port endpoint that transmits pre-scripted frames
 * at exact cycles and records every received frame with its arrival
 * timestamp. Used by the fabric and switch tests to verify the token
 * protocol's delivery-cycle arithmetic.
 */

#ifndef FIRESIM_TESTS_NET_SCRIPTED_ENDPOINT_HH
#define FIRESIM_TESTS_NET_SCRIPTED_ENDPOINT_HH

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "net/eth.hh"
#include "net/fabric.hh"

namespace firesim
{

class ScriptedEndpoint : public TokenEndpoint
{
  public:
    explicit ScriptedEndpoint(std::string name) : label(std::move(name)) {}

    /**
     * Schedule @p frame to start leaving at cycle @p start, one flit per
     * cycle. Calls must be in increasing, non-overlapping cycle order.
     */
    void
    sendAt(Cycles start, const EthFrame &frame)
    {
        FrameSerializer ser(frame);
        Cycles c = start;
        while (!ser.done()) {
            Flit flit = ser.next();
            txScript.emplace_back(c++, flit);
        }
    }

    uint32_t numPorts() const override { return 1; }
    std::string name() const override { return label; }

    void
    advance(Cycles window_start, Cycles window,
            const std::vector<const TokenBatch *> &in,
            std::vector<TokenBatch> &out) override
    {
        // Receive side.
        for (const Flit &flit : in[0]->flits) {
            EthFrame frame;
            if (rx.feed(flit, in[0]->absCycle(flit), frame))
                received.emplace_back(frame.timestamp, std::move(frame));
        }
        // Transmit side.
        Cycles window_end = window_start + window;
        while (!txScript.empty() && txScript.front().first < window_end) {
            auto [cycle, flit] = txScript.front();
            FS_ASSERT(cycle >= window_start,
                      "scripted flit at %llu missed its window",
                      (unsigned long long)cycle);
            flit.offset = static_cast<uint32_t>(cycle - window_start);
            out[0].push(flit);
            txScript.pop_front();
        }
    }

    /** (arrival cycle of last token, frame) for every received frame. */
    std::vector<std::pair<Cycles, EthFrame>> received;

  private:
    std::string label;
    std::deque<std::pair<Cycles, Flit>> txScript;
    FrameAssembler rx;
};

} // namespace firesim

#endif // FIRESIM_TESTS_NET_SCRIPTED_ENDPOINT_HH
