/**
 * @file
 * Unit tests for the round scheduler's building blocks: the Chase-Lev
 * work-stealing deque (single-owner take vs multi-thief steal, no item
 * lost or duplicated), ThreadPool::parallelRun's fixed worker
 * identities, SchedPolicy parsing, and the RoundScheduler's
 * every-unit-exactly-once dispatch contract under all three policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"
#include "net/sched.hh"

namespace firesim
{
namespace
{

TEST(StealDeque, OwnerTakesLifoThiefStealsFifo)
{
    StealDeque dq;
    dq.reserve(8);
    dq.reset();
    for (uint32_t i = 0; i < 6; ++i)
        dq.push(i);
    EXPECT_EQ(dq.sizeHint(), 6u);

    uint32_t item = 999;
    ASSERT_TRUE(dq.take(item)); // owner end: most recent first
    EXPECT_EQ(item, 5u);
    ASSERT_TRUE(dq.steal(item)); // thief end: oldest first
    EXPECT_EQ(item, 0u);
    ASSERT_TRUE(dq.steal(item));
    EXPECT_EQ(item, 1u);
    ASSERT_TRUE(dq.take(item));
    EXPECT_EQ(item, 4u);
    ASSERT_TRUE(dq.take(item));
    EXPECT_EQ(item, 3u);
    ASSERT_TRUE(dq.take(item)); // last item, owner wins the CAS
    EXPECT_EQ(item, 2u);
    EXPECT_FALSE(dq.take(item));
    EXPECT_FALSE(dq.steal(item));
    EXPECT_EQ(dq.sizeHint(), 0u);
}

TEST(StealDeque, ResetEmptiesAndReusesBuffer)
{
    StealDeque dq;
    dq.reserve(4);
    dq.reset();
    dq.push(7);
    uint32_t item = 0;
    ASSERT_TRUE(dq.take(item));
    EXPECT_EQ(item, 7u);
    dq.reset();
    EXPECT_FALSE(dq.steal(item));
    dq.push(11);
    ASSERT_TRUE(dq.steal(item));
    EXPECT_EQ(item, 11u);
}

TEST(StealDeque, ConcurrentOwnerAndThievesCoverAllItemsOnce)
{
    // One owner draining its own deque while three thieves hammer
    // steal(): every item must be claimed exactly once. This is the
    // test the TSan tree (`ctest -L sanitize-thread`) runs to vet the
    // deque's ordering claims.
    constexpr uint32_t kItems = 20000;
    constexpr int kThieves = 3;
    StealDeque dq;
    dq.reserve(kItems);

    for (int repeat = 0; repeat < 3; ++repeat) {
        dq.reset();
        for (uint32_t i = 0; i < kItems; ++i)
            dq.push(i);

        std::vector<std::atomic<uint32_t>> claimed(kItems);
        for (auto &c : claimed)
            c.store(0, std::memory_order_relaxed);
        std::atomic<bool> go{false};

        auto thief = [&]() {
            while (!go.load(std::memory_order_seq_cst)) {
            }
            uint32_t item;
            // A false steal() can be "lost a race", not "empty":
            // keep scanning until the deque is truly drained.
            while (dq.sizeHint() > 0)
                if (dq.steal(item))
                    claimed[item].fetch_add(1, std::memory_order_seq_cst);
        };
        std::vector<std::thread> thieves;
        for (int t = 0; t < kThieves; ++t)
            thieves.emplace_back(thief);

        go.store(true, std::memory_order_seq_cst);
        uint32_t item;
        uint64_t taken = 0;
        while (dq.sizeHint() > 0)
            if (dq.take(item)) {
                claimed[item].fetch_add(1, std::memory_order_seq_cst);
                ++taken;
            }
        for (auto &t : thieves)
            t.join();

        for (uint32_t i = 0; i < kItems; ++i)
            ASSERT_EQ(claimed[i].load(), 1u) << "item " << i;
        // The owner should get *some* of its own queue back.
        EXPECT_GT(taken, 0u);
    }
}

TEST(SchedPolicy, ParseAndName)
{
    SchedPolicy p = SchedPolicy::Cost;
    EXPECT_TRUE(parseSchedPolicy("rr", p));
    EXPECT_EQ(p, SchedPolicy::RoundRobin);
    EXPECT_TRUE(parseSchedPolicy("roundrobin", p));
    EXPECT_EQ(p, SchedPolicy::RoundRobin);
    EXPECT_TRUE(parseSchedPolicy("cost", p));
    EXPECT_EQ(p, SchedPolicy::Cost);
    EXPECT_TRUE(parseSchedPolicy("steal", p));
    EXPECT_EQ(p, SchedPolicy::Steal);

    p = SchedPolicy::Cost;
    EXPECT_FALSE(parseSchedPolicy("bogus", p));
    EXPECT_FALSE(parseSchedPolicy("", p));
    EXPECT_FALSE(parseSchedPolicy("RR", p)); // case-sensitive
    EXPECT_EQ(p, SchedPolicy::Cost);         // untouched on failure

    EXPECT_STREQ(schedPolicyName(SchedPolicy::RoundRobin), "rr");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Cost), "cost");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Steal), "steal");
}

TEST(ThreadPool, ParallelRunVisitsEveryWorkerExactlyOnce)
{
    for (unsigned width : {1u, 2u, 4u}) {
        ThreadPool pool(width);
        std::vector<std::atomic<uint32_t>> hits(width);
        for (auto &h : hits)
            h.store(0);
        for (int round = 0; round < 50; ++round) {
            pool.parallelRun([&](unsigned id) {
                ASSERT_LT(id, width);
                hits[id].fetch_add(1, std::memory_order_seq_cst);
            });
        }
        for (unsigned w = 0; w < width; ++w)
            EXPECT_EQ(hits[w].load(), 50u) << "worker " << w;
    }
}

TEST(ThreadPool, ParallelRunCallerIsWorkerZero)
{
    ThreadPool pool(3);
    std::thread::id caller = std::this_thread::get_id();
    std::atomic<bool> zero_is_caller{false};
    pool.parallelRun([&](unsigned id) {
        if (id == 0)
            zero_is_caller.store(std::this_thread::get_id() == caller);
    });
    EXPECT_TRUE(zero_is_caller.load());
}

class SchedulerDispatch
    : public ::testing::TestWithParam<SchedPolicy>
{
};

TEST_P(SchedulerDispatch, EveryUnitRunsExactlyOncePerRound)
{
    constexpr size_t kUnits = 23; // not a multiple of any pool width
    for (unsigned width : {1u, 2u, 4u}) {
        ThreadPool pool(width);
        SchedTelemetry tel;
        tel.reset(width);
        RoundScheduler sched;
        sched.configure(kUnits, width, &tel);
        sched.setPolicy(GetParam());

        std::vector<std::atomic<uint32_t>> runs(kUnits);
        for (auto &r : runs)
            r.store(0);
        struct Ctx
        {
            std::vector<std::atomic<uint32_t>> *runs;
        } ctx{&runs};

        const int kRounds = 20;
        for (int round = 0; round < kRounds; ++round) {
            tel.beginRound();
            sched.dispatch(
                pool,
                [](void *c, uint32_t u) {
                    (*static_cast<Ctx *>(c)->runs)[u].fetch_add(
                        1, std::memory_order_seq_cst);
                },
                &ctx);
            tel.endRound();
        }

        for (size_t u = 0; u < kUnits; ++u)
            EXPECT_EQ(runs[u].load(), unsigned(kRounds))
                << "unit " << u << " width " << width;

        // Accounting invariants: every unit execution was attributed
        // to exactly one worker, and the cost model has measurements.
        uint64_t units_run = 0;
        for (const auto &w : tel.workers)
            units_run += w.unitsRun;
        EXPECT_EQ(units_run, uint64_t(kUnits) * kRounds);
        for (uint32_t u = 0; u < kUnits; ++u)
            EXPECT_GE(sched.expectedCostNs(u), 0.0);
        if (GetParam() != SchedPolicy::Steal) {
            uint64_t steals = 0;
            for (const auto &w : tel.workers)
                steals += w.steals;
            EXPECT_EQ(steals, 0u) << "non-steal policy stole work";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerDispatch,
                         ::testing::Values(SchedPolicy::RoundRobin,
                                           SchedPolicy::Cost,
                                           SchedPolicy::Steal));

TEST(SchedTelemetry, MaxMeanBusyRatioWeightsByRound)
{
    SchedTelemetry tel;
    tel.reset(2);
    // Hand-feed two rounds through the same path dispatch uses: the
    // roundBusy scratch is folded by endRound().
    tel.beginRound();
    tel.roundBusy[0] = 300;
    tel.roundBusy[1] = 100;
    tel.endRound();
    tel.beginRound();
    tel.roundBusy[0] = 100;
    tel.roundBusy[1] = 100;
    tel.endRound();
    // max sum = 300 + 100, total sum = 400 + 200 -> mean 300/round pair
    // => ratio = 400 / (600 / 2) = 4/3.
    EXPECT_EQ(tel.rounds, 2u);
    EXPECT_NEAR(tel.maxMeanBusyRatio(), 400.0 / 300.0, 1e-9);

    // Idle rounds (no busy time at all) must not dilute the ratio.
    tel.beginRound();
    tel.endRound();
    EXPECT_EQ(tel.rounds, 2u);
}

TEST(SchedTelemetry, MeanIsOverWorkersThatDidWork)
{
    // Regression: the ratio used to divide by the configured pool
    // width, so a round that used 2 of 4 workers looked 2x better
    // balanced than it was (and a perfectly even 1-of-4 round scored
    // an impossible 0.25-style ratio scaled to 4.0).
    SchedTelemetry tel;
    tel.reset(4);
    tel.beginRound();
    tel.roundBusy[0] = 300; // only one worker had any units
    tel.endRound();
    EXPECT_NEAR(tel.maxMeanBusyRatio(), 1.0, 1e-9);

    tel.beginRound();
    tel.roundBusy[0] = 300;
    tel.roundBusy[1] = 100; // two active: max 300, mean 200
    tel.endRound();
    // Cumulative: (300 + 300) / (300 + 200).
    EXPECT_NEAR(tel.maxMeanBusyRatio(), 600.0 / 500.0, 1e-9);
    EXPECT_EQ(tel.sumTotalBusyNs, 700u);
}

TEST(RoundScheduler, ZeroNsSampleSeedsTheCostModel)
{
    // Regression: a 0ns measurement (unit cheaper than the clock tick)
    // collided with the "never measured" EWMA sentinel, leaving the
    // unit permanently unseeded — it was re-seeded from scratch every
    // round and the LPT partition never learned its cost.
    RoundScheduler sched;
    SchedTelemetry tel;
    tel.reset(1);
    sched.configure(2, 1, &tel);

    sched.recordSample(0, 0);
    EXPECT_DOUBLE_EQ(sched.expectedCostNs(0), 1.0); // clamped seed
    sched.recordSample(0, 1000);
    // Blended, not re-seeded: 0.25 * 1000 + 0.75 * 1.
    EXPECT_DOUBLE_EQ(sched.expectedCostNs(0), 250.75);

    // A 0ns sample after real measurements decays the EWMA toward the
    // clamp floor instead of resetting it.
    sched.recordSample(1, 400);
    EXPECT_DOUBLE_EQ(sched.expectedCostNs(1), 400.0);
    sched.recordSample(1, 0);
    EXPECT_DOUBLE_EQ(sched.expectedCostNs(1), 0.25 * 1 + 0.75 * 400);
}

} // namespace
} // namespace firesim
