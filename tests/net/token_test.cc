#include <gtest/gtest.h>

#include "net/token.hh"

namespace firesim
{
namespace
{

Flit
mkFlit(uint32_t offset, bool last = false)
{
    Flit f;
    f.offset = offset;
    f.last = last;
    f.size = 8;
    return f;
}

TEST(TokenBatch, StartsEmpty)
{
    TokenBatch b(100, 64);
    EXPECT_TRUE(b.isEmpty());
    EXPECT_EQ(b.start, 100u);
    EXPECT_EQ(b.len, 64u);
}

TEST(TokenBatch, PushKeepsOrder)
{
    TokenBatch b(0, 16);
    b.push(mkFlit(1));
    b.push(mkFlit(5));
    b.push(mkFlit(15, true));
    EXPECT_EQ(b.flits.size(), 3u);
    EXPECT_EQ(b.absCycle(b.flits[1]), 5u);
}

TEST(TokenBatch, AbsCycleAddsStart)
{
    TokenBatch b(6400, 6400);
    b.push(mkFlit(100));
    EXPECT_EQ(b.absCycle(b.flits[0]), 6500u);
}

TEST(TokenBatchDeath, OffsetOutsideBatch)
{
    TokenBatch b(0, 8);
    EXPECT_DEATH(b.push(mkFlit(8)), "outside batch");
}

TEST(TokenBatchDeath, NonMonotonicOffsets)
{
    TokenBatch b(0, 8);
    b.push(mkFlit(3));
    EXPECT_DEATH(b.push(mkFlit(3)), "strictly increasing");
}

TEST(TokenBatchDeath, ZeroSizeFlitRejected)
{
    TokenBatch b(0, 8);
    Flit f = mkFlit(0);
    f.size = 0;
    EXPECT_DEATH(b.push(f), "size");
}

} // namespace
} // namespace firesim
