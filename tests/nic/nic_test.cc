#include <gtest/gtest.h>

#include "net/fabric.hh"
#include "node/server_blade.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

/** One blade wired to a scripted peer through the fabric. */
struct NicFixture : public ::testing::Test
{
    void
    boot(NicConfig nic_cfg = NicConfig{})
    {
        BladeConfig bc;
        bc.name = "dut";
        bc.memBytes = 64 * MiB;
        bc.nic = nic_cfg;
        bc.mac = MacAddr(0xa);
        blade = std::make_unique<ServerBlade>(bc);
        peer = std::make_unique<ScriptedEndpoint>("peer");
        fabric.addEndpoint(blade.get());
        fabric.addEndpoint(peer.get());
        fabric.connect(blade.get(), 0, peer.get(), 0, 400);
        fabric.finalize();
    }

    /** Stage a frame in blade memory and return (addr, len). */
    std::pair<uint64_t, uint32_t>
    stageFrame(uint64_t addr, uint32_t payload_bytes, uint8_t tag = 7)
    {
        std::vector<uint8_t> payload(payload_bytes, tag);
        EthFrame f(MacAddr(0xb), MacAddr(0xa), EtherType::Raw, payload);
        blade->memory().write(addr, f.bytes.data(), f.size());
        return {addr, f.size()};
    }

    TokenFabric fabric;
    std::unique_ptr<ServerBlade> blade;
    std::unique_ptr<ScriptedEndpoint> peer;
};

TEST_F(NicFixture, SendDmaPathDeliversExactBytes)
{
    boot();
    auto [addr, len] = stageFrame(0x10000, 200, 0x5a);
    ASSERT_TRUE(blade->nic().pushSendRequest(addr, len));
    fabric.run(20000);
    ASSERT_EQ(peer->received.size(), 1u);
    const EthFrame &rx = peer->received[0].second;
    EXPECT_EQ(rx.size(), len);
    EXPECT_EQ(rx.dst(), MacAddr(0xb));
    for (uint8_t b : rx.payload())
        ASSERT_EQ(b, 0x5a);
    EXPECT_EQ(blade->nic().stats().framesSent.value(), 1u);
    EXPECT_EQ(blade->nic().stats().bytesSent.value(), len);
}

TEST_F(NicFixture, SendCompletionPostedAndInterruptRaised)
{
    boot();
    int interrupts = 0;
    blade->nic().setInterruptHandler([&] { ++interrupts; });
    auto [addr, len] = stageFrame(0x10000, 50);
    blade->nic().pushSendRequest(addr, len);
    fabric.run(20000);
    EXPECT_EQ(blade->nic().sendCompPending(), 1u);
    EXPECT_TRUE(blade->nic().popSendComp());
    EXPECT_FALSE(blade->nic().popSendComp());
    EXPECT_GE(interrupts, 1);
}

TEST_F(NicFixture, ReceiveDmaWritesToPostedBuffer)
{
    boot();
    blade->nic().pushRecvRequest(0x20000);
    EthFrame f(MacAddr(0xa), MacAddr(0xb), EtherType::Raw,
               std::vector<uint8_t>(64, 0xc3));
    peer->sendAt(100, f);
    fabric.run(20000);
    auto comp = blade->nic().popRecvComp();
    ASSERT_TRUE(comp.has_value());
    EXPECT_EQ(comp->addr, 0x20000u);
    EXPECT_EQ(comp->len, f.size());
    std::vector<uint8_t> buf(f.size());
    blade->memory().read(0x20000, buf.data(), f.size());
    EXPECT_EQ(buf, f.bytes);
}

TEST_F(NicFixture, RxDropsWholePacketsWhenBufferFull)
{
    NicConfig nc;
    nc.packetBufBytes = 1600; // fits one 1.5 KiB frame only
    boot(nc);
    // No receive requests posted: the writer can never drain the
    // buffer, so the second packet must be dropped in its entirety.
    EthFrame big(MacAddr(0xa), MacAddr(0xb), EtherType::Raw,
                 std::vector<uint8_t>(1400, 1));
    peer->sendAt(0, big);
    peer->sendAt(200, big);
    fabric.run(20000);
    EXPECT_EQ(blade->nic().stats().framesReceived.value(), 1u);
    EXPECT_EQ(blade->nic().stats().framesDroppedRx.value(), 1u);
}

TEST_F(NicFixture, RateLimitedStreamHasHalvedThroughput)
{
    NicConfig nc;
    nc.rateK = 1;
    nc.rateP = 2;
    nc.sendReqDepth = 64;
    nc.dmaBytesPerCycle = 64.0; // keep the reader off the critical path
    nc.dmaStartLatency = 1;
    boot(nc);
    // Queue 8 frames back-to-back; steady-state spacing between frame
    // completions reflects k/p = 1/2 of line rate.
    std::vector<std::pair<uint64_t, uint32_t>> frames;
    for (int i = 0; i < 8; ++i)
        frames.push_back(stageFrame(0x10000 + i * 0x1000, 498)); // 64 flits
    for (auto [addr, len] : frames)
        ASSERT_TRUE(blade->nic().pushSendRequest(addr, len));
    fabric.run(100000);
    ASSERT_EQ(peer->received.size(), 8u);
    // Steady-state inter-frame gap ~ 64 flits / (1/2) = 128 cycles.
    Cycles g = peer->received[7].first - peer->received[6].first;
    EXPECT_NEAR(static_cast<double>(g), 128.0, 8.0);
}

TEST_F(NicFixture, LineRateStreamIsBackToBack)
{
    NicConfig nc;
    nc.sendReqDepth = 64;
    nc.dmaBytesPerCycle = 64.0; // make DMA a non-factor
    nc.dmaStartLatency = 1;
    boot(nc);
    for (int i = 0; i < 4; ++i) {
        auto [addr, len] = stageFrame(0x10000 + i * 0x1000, 498);
        ASSERT_TRUE(blade->nic().pushSendRequest(addr, len));
    }
    fabric.run(50000);
    ASSERT_EQ(peer->received.size(), 4u);
    Cycles g = peer->received[3].first - peer->received[2].first;
    EXPECT_EQ(g, 64u); // one flit per cycle, 64-flit frames
}

TEST_F(NicFixture, RuntimeRateChangeTakesEffect)
{
    NicConfig nc;
    nc.sendReqDepth = 64;
    boot(nc);
    blade->nic().setRateLimit(1, 4); // quarter line rate
    auto [a1, l1] = stageFrame(0x10000, 498);
    auto [a2, l2] = stageFrame(0x20000, 498);
    blade->nic().pushSendRequest(a1, l1);
    blade->nic().pushSendRequest(a2, l2);
    fabric.run(200000);
    ASSERT_EQ(peer->received.size(), 2u);
    Cycles g = peer->received[1].first - peer->received[0].first;
    EXPECT_NEAR(static_cast<double>(g), 64.0 * 4.0, 16.0);
}

TEST_F(NicFixture, QueueDepthBackpressure)
{
    NicConfig nc;
    nc.sendReqDepth = 2;
    boot(nc);
    auto [addr, len] = stageFrame(0x10000, 100);
    EXPECT_TRUE(blade->nic().pushSendRequest(addr, len));
    EXPECT_TRUE(blade->nic().pushSendRequest(addr, len));
    // Depth 2: the third push may be refused (the first may already
    // have been issued to the reader, so allow either outcome, but the
    // fourth must fail if the third succeeded while nothing drained).
    bool third = blade->nic().pushSendRequest(addr, len);
    bool fourth = blade->nic().pushSendRequest(addr, len);
    EXPECT_FALSE(third && fourth);
}

TEST_F(NicFixture, UndersizeSendIsFatal)
{
    boot();
    EXPECT_EXIT(blade->nic().pushSendRequest(0x1000, 4),
                ::testing::ExitedWithCode(1), "send request");
}

} // namespace
} // namespace firesim
