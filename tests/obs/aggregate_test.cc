/**
 * @file
 * Cross-shard telemetry aggregation (telemetry/aggregate.hh): the
 * varint RankTelemetry wire encoding must round-trip exactly, reject
 * every malformed prefix/suffix strictly (network bytes never panic),
 * and the StatAggregator's merged renderings must carry per-rank
 * `rankK.` prefixes and simulated-clock trace lanes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/varint.hh"
#include "telemetry/aggregate.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

RankTelemetry
sampleTelemetry(uint32_t rank, Cycles cycle)
{
    RankTelemetry rt;
    rt.rank = rank;
    rt.round = 17;
    rt.cycle = cycle;
    rt.stats.at = cycle;
    // Sorted, prefix-heavy names: the shape the registry produces and
    // the encoding's prefix compression is built for.
    rt.stats.values = {
        {"cluster.node0.nic.bytesSent", 123456789.0},
        {"cluster.node0.nic.framesSent", 42.0},
        {"cluster.node0.os.ipc", 0.625},
        {"cluster.switch0.packetsOut", -5.0},
        {"cluster.switch0.queue.p99", 1.75e17},
    };
    SimRateTelemetry::Phase ph;
    ph.name = "run.0";
    ph.startCycle = 0;
    ph.targetCycles = 600000;
    ph.hostSeconds = 0.125;
    rt.phases.push_back(ph);
    ph.name = "run.600000";
    ph.startCycle = 600000;
    ph.targetCycles = 40000;
    ph.hostSeconds = 0.0078125;
    rt.phases.push_back(ph);
    return rt;
}

TEST(RankTelemetryCodec, RoundTripsExactly)
{
    RankTelemetry rt = sampleTelemetry(3, 640000);
    std::string bytes = encodeRankTelemetry(rt);
    RankTelemetry back;
    ASSERT_TRUE(decodeRankTelemetry(bytes, back));

    EXPECT_EQ(back.rank, rt.rank);
    EXPECT_EQ(back.round, rt.round);
    EXPECT_EQ(back.cycle, rt.cycle);
    EXPECT_EQ(back.stats.at, rt.cycle);
    ASSERT_EQ(back.stats.values.size(), rt.stats.values.size());
    for (size_t i = 0; i < rt.stats.values.size(); ++i) {
        EXPECT_EQ(back.stats.values[i].first, rt.stats.values[i].first);
        // Integral values ride zigzag varints, non-integral ones raw
        // IEEE-754 bits — either way bit-exact, not approximate.
        EXPECT_EQ(back.stats.values[i].second,
                  rt.stats.values[i].second)
            << rt.stats.values[i].first;
    }
    ASSERT_EQ(back.phases.size(), rt.phases.size());
    for (size_t i = 0; i < rt.phases.size(); ++i) {
        EXPECT_EQ(back.phases[i].name, rt.phases[i].name);
        EXPECT_EQ(back.phases[i].startCycle, rt.phases[i].startCycle);
        EXPECT_EQ(back.phases[i].targetCycles,
                  rt.phases[i].targetCycles);
        EXPECT_EQ(back.phases[i].hostSeconds, rt.phases[i].hostSeconds);
    }
}

TEST(RankTelemetryCodec, EmptyTelemetryRoundTrips)
{
    RankTelemetry rt;
    rt.rank = 0;
    std::string bytes = encodeRankTelemetry(rt);
    RankTelemetry back;
    ASSERT_TRUE(decodeRankTelemetry(bytes, back));
    EXPECT_EQ(back.stats.values.size(), 0u);
    EXPECT_EQ(back.phases.size(), 0u);
}

TEST(RankTelemetryCodec, RejectsEveryTruncation)
{
    // The decoder's contract: malformed or truncated bytes return
    // false, never panic, never read out of bounds. Every strict
    // prefix of a valid encoding is truncated, so all must fail.
    std::string bytes = encodeRankTelemetry(sampleTelemetry(1, 9999));
    RankTelemetry out;
    for (size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(decodeRankTelemetry(bytes.substr(0, len), out))
            << "prefix of length " << len << " decoded";
    }
    ASSERT_TRUE(decodeRankTelemetry(bytes, out));
}

TEST(RankTelemetryCodec, RejectsTrailingJunkAndBadVersion)
{
    std::string bytes = encodeRankTelemetry(sampleTelemetry(1, 50));
    RankTelemetry out;
    EXPECT_FALSE(decodeRankTelemetry(bytes + "x", out));

    std::string bad = bytes;
    bad[0] = static_cast<char>(kRankTelemetryVersion + 1);
    EXPECT_FALSE(decodeRankTelemetry(bad, out));
}

TEST(StatAggregator, AcceptEncodedDropsMalformedAndMismatchedRank)
{
    StatAggregator agg;
    agg.acceptEncoded(1, "definitely not telemetry");
    EXPECT_EQ(agg.rankCount(), 0u);

    // A payload that internally claims a different rank than the
    // transport delivered it from is dropped, not trusted.
    agg.acceptEncoded(1, encodeRankTelemetry(sampleTelemetry(2, 10)));
    EXPECT_EQ(agg.rankCount(), 0u);
    EXPECT_FALSE(agg.hasRank(1));
    EXPECT_FALSE(agg.hasRank(2));

    agg.acceptEncoded(2, encodeRankTelemetry(sampleTelemetry(2, 10)));
    EXPECT_EQ(agg.rankCount(), 1u);
    EXPECT_TRUE(agg.hasRank(2));
}

TEST(StatAggregator, KeepsTheNewestTelemetryPerRank)
{
    StatAggregator agg;
    agg.accept(sampleTelemetry(0, 1000));
    agg.accept(sampleTelemetry(1, 2000));
    EXPECT_EQ(agg.rankCount(), 2u);
    EXPECT_EQ(agg.maxCycle(), 2000u);

    agg.accept(sampleTelemetry(0, 3000));
    EXPECT_EQ(agg.rankCount(), 2u);
    EXPECT_EQ(agg.rankTelemetry(0).cycle, 3000u);
    EXPECT_EQ(agg.maxCycle(), 3000u);
}

TEST(StatAggregator, MergedJsonPrefixesNamesByRank)
{
    StatAggregator agg;
    agg.accept(sampleTelemetry(0, 1000));
    agg.accept(sampleTelemetry(1, 2000));

    minijson::ValuePtr doc = minijson::parse(agg.mergedJson());
    EXPECT_DOUBLE_EQ(doc->at("cycle").number, 2000.0);
    const minijson::Value &stats = doc->at("stats");
    ASSERT_TRUE(stats.isObject());
    EXPECT_DOUBLE_EQ(
        stats.at("rank0.cluster.node0.nic.framesSent").number, 42.0);
    EXPECT_DOUBLE_EQ(stats.at("rank0.cluster.node0.os.ipc").number,
                     0.625);
    EXPECT_DOUBLE_EQ(
        stats.at("rank1.cluster.switch0.packetsOut").number, -5.0);
    EXPECT_FALSE(stats.has("cluster.node0.nic.framesSent"))
        << "merged names must be rank-prefixed";
}

TEST(StatAggregator, MergedCsvMatchesRegistryShape)
{
    StatAggregator agg;
    RankTelemetry rt;
    rt.rank = 0;
    rt.cycle = 77;
    rt.stats.values = {{"a.one", 3.0}, {"b.two", 1.5}};
    agg.accept(rt);
    EXPECT_EQ(agg.mergedCsv(),
              "# cycle 77\nstat,value\nrank0.a.one,3\nrank0.b.two,1.5\n");
}

TEST(StatAggregator, MergedCsvQuotesNamesLikeTheRegistry)
{
    // A peer's stat name may legally contain commas or quotes; the
    // merged CSV must RFC-4180-quote the whole field the way
    // StatRegistry::dumpCsv does, or one hostile name shifts every
    // later column.
    StatAggregator agg;
    RankTelemetry rt;
    rt.rank = 2;
    rt.cycle = 9;
    rt.stats.values = {{"plain.name", 1.0},
                       {"with,comma", 2.0},
                       {"with\"quote", 3.0}};
    agg.accept(rt);
    EXPECT_EQ(agg.mergedCsv(),
              "# cycle 9\nstat,value\n"
              "rank2.plain.name,1\n"
              "\"rank2.with,comma\",2\n"
              "\"rank2.with\"\"quote\",3\n");
}

TEST(RankTelemetryCodec, HostileCountsCannotReserveUnboundedMemory)
{
    // A hand-built header claiming ~2^40 stats in a 5-byte body: the
    // decoder must fail cleanly (and fast) instead of reserving
    // terabytes up front on the peer's say-so.
    std::string bytes;
    putVarint(bytes, 1);                  // version
    putVarint(bytes, 0);                  // rank
    putVarint(bytes, 1);                  // round
    putVarint(bytes, 2);                  // cycle
    putVarint(bytes, 1ULL << 40);         // nstats (hostile)
    bytes += "\x01\x01";                  // garbage tail
    RankTelemetry out;
    EXPECT_FALSE(decodeRankTelemetry(bytes, out));
    EXPECT_LT(out.stats.values.capacity(), 1024u)
        << "peer-controlled stat count drove the reserve";

    // Same for the phase count, after a valid empty stats table.
    std::string bytes2;
    putVarint(bytes2, 1);                 // version
    putVarint(bytes2, 0);                 // rank
    putVarint(bytes2, 1);                 // round
    putVarint(bytes2, 2);                 // cycle
    putVarint(bytes2, 0);                 // nstats
    putVarint(bytes2, 1ULL << 40);        // nphases (hostile)
    RankTelemetry out2;
    EXPECT_FALSE(decodeRankTelemetry(bytes2, out2));
    EXPECT_LT(out2.phases.capacity(), 1024u)
        << "peer-controlled phase count drove the reserve";
}

TEST(StatAggregator, MergedTraceAlignsLanesOnSimulatedCycles)
{
    StatAggregator agg;
    agg.accept(sampleTelemetry(0, 1000));
    agg.accept(sampleTelemetry(1, 2000));

    minijson::ValuePtr doc = minijson::parse(agg.mergedTraceJson());
    const minijson::Value &events = doc->at("traceEvents");
    ASSERT_TRUE(events.isArray());

    size_t metadata = 0, spans = 0;
    for (const minijson::ValuePtr &ev : events.array) {
        if (ev->at("ph").str == "M") {
            ++metadata;
            EXPECT_EQ(ev->at("name").str, "process_name");
            continue;
        }
        ++spans;
        EXPECT_EQ(ev->at("ph").str, "X");
        double pid = ev->at("pid").number;
        EXPECT_TRUE(pid == 1.0 || pid == 2.0) << "pid = rank + 1";
        // Lanes align on the simulated clock: ts is the phase's start
        // cycle and dur its cycle span, for both ranks identically.
        if (ev->at("name").str == "run.0") {
            EXPECT_DOUBLE_EQ(ev->at("ts").number, 0.0);
            EXPECT_DOUBLE_EQ(ev->at("dur").number, 600000.0);
        } else {
            EXPECT_EQ(ev->at("name").str, "run.600000");
            EXPECT_DOUBLE_EQ(ev->at("ts").number, 600000.0);
            EXPECT_DOUBLE_EQ(ev->at("dur").number, 40000.0);
        }
    }
    EXPECT_EQ(metadata, 2u) << "one process_name lane per rank";
    EXPECT_EQ(spans, 4u) << "two phases per rank";
}

} // namespace
} // namespace firesim
