/**
 * @file
 * Crash flight recorder: the fixed ring keeps exactly the last `depth`
 * events, survives concurrent writers and a concurrent reader (the
 * TSan tree runs this), renders parseable JSONL with a trailer, and
 * dumps atomically to its postmortem path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

using EventKind = FlightRecorder::EventKind;

FlightRecorderConfig
testConfig(size_t depth, const char *file)
{
    FlightRecorderConfig fc;
    fc.enabled = true;
    fc.depth = depth;
    fc.path = ::testing::TempDir() + file;
    return fc;
}

std::vector<std::string>
jsonlLines(const std::string &text)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > pos)
            out.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return out;
}

TEST(FlightRecorder, RingKeepsTheLastDepthEvents)
{
    FlightRecorder fr(testConfig(8, "fsfr_ring.jsonl"));
    for (uint64_t i = 0; i < 20; ++i)
        fr.record(EventKind::Note, i, i * 400, "evt", i);
    EXPECT_EQ(fr.recorded(), 20u);
    EXPECT_EQ(fr.depth(), 8u);

    std::vector<std::string> out = jsonlLines(fr.renderJsonl("why"));
    ASSERT_EQ(out.size(), 9u) << "8 events + trailer";
    for (size_t i = 0; i + 1 < out.size(); ++i) {
        minijson::ValuePtr ev = minijson::parse(out[i]);
        // Oldest-first, starting where the ring stopped lapping.
        EXPECT_DOUBLE_EQ(ev->at("seq").number,
                         static_cast<double>(12 + i));
        EXPECT_DOUBLE_EQ(ev->at("a").number,
                         static_cast<double>(12 + i));
        EXPECT_EQ(ev->at("kind").str, "note");
        EXPECT_EQ(ev->at("detail").str, "evt");
    }
    minijson::ValuePtr trailer = minijson::parse(out.back());
    const minijson::Value &end = trailer->at("flight_recorder_end");
    EXPECT_EQ(end.at("reason").str, "why");
    EXPECT_DOUBLE_EQ(end.at("recorded").number, 20.0);
    EXPECT_DOUBLE_EQ(end.at("emitted").number, 8.0);
}

TEST(FlightRecorder, EveryEventKindRendersItsName)
{
    FlightRecorder fr(testConfig(16, "fsfr_kinds.jsonl"));
    for (uint8_t k = 0;
         k < static_cast<uint8_t>(EventKind::kCount); ++k)
        fr.record(static_cast<EventKind>(k), k, k);
    std::string jsonl = fr.renderJsonl("kinds");
    for (const char *name :
         {"round-barrier", "fault-injected", "health-event",
          "peer-loss", "peer-message", "checkpoint-write",
          "restore-diverged", "heartbeat", "straggler", "note"}) {
        EXPECT_NE(jsonl.find(std::string("\"kind\": \"") + name + "\""),
                  std::string::npos)
            << name;
    }
    EXPECT_EQ(jsonl.find("unknown"), std::string::npos);
}

TEST(FlightRecorder, DetailIsTruncatedAndEscaped)
{
    FlightRecorder fr(testConfig(4, "fsfr_detail.jsonl"));
    std::string long_detail(100, 'x');
    fr.record(EventKind::Note, 0, 0, long_detail.c_str());
    fr.record(EventKind::Note, 1, 1, "quote \" and back\\slash");

    std::vector<std::string> out = jsonlLines(fr.renderJsonl("d"));
    ASSERT_EQ(out.size(), 3u);
    // The slot holds 63 chars + NUL; the overlong detail is cut, the
    // line still parses.
    minijson::ValuePtr first = minijson::parse(out[0]);
    EXPECT_EQ(first->at("detail").str, std::string(63, 'x'));
    minijson::ValuePtr second = minijson::parse(out[1]);
    EXPECT_EQ(second->at("detail").str, "quote \" and back\\slash");
}

TEST(FlightRecorder, DumpWritesThePostmortemFile)
{
    FlightRecorderConfig fc = testConfig(8, "fsfr_dump.jsonl");
    std::remove(fc.path.c_str());
    FlightRecorder fr(fc);
    fr.record(EventKind::PeerLoss, 9, 3600, "peer shard 1 lost", 1);
    ASSERT_TRUE(fr.dump("peer shard 1 lost"));

    std::FILE *f = std::fopen(fc.path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::vector<std::string> out = jsonlLines(text);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(minijson::parse(out[0])->at("kind").str, "peer-loss");
    EXPECT_EQ(minijson::parse(out[1])
                  ->at("flight_recorder_end")
                  .at("reason")
                  .str,
              "peer shard 1 lost");
    std::remove(fc.path.c_str());
}

TEST(FlightRecorder, ConcurrentWritersAndReaderStayCoherent)
{
    // The TSan target for the lock-free ring: four writer threads
    // hammer the ring while the main thread renders snapshots. No
    // crash, no torn line, and the final count is exact.
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 5000;
    FlightRecorder fr(testConfig(64, "fsfr_mt.jsonl"));

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&fr, t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                fr.record(EventKind::RoundBarrier, i, i * 400,
                          "writer", static_cast<uint64_t>(t), i);
        });
    }
    for (int i = 0; i < 50; ++i) {
        // Mid-flight renders must always be valid JSONL; lapped or
        // mid-copy slots are skipped, never emitted torn.
        for (const std::string &line :
             jsonlLines(fr.renderJsonl("live")))
            EXPECT_NO_THROW(minijson::parse(line));
    }
    for (auto &w : writers)
        w.join();

    EXPECT_EQ(fr.recorded(), kThreads * kPerThread);
    std::vector<std::string> out = jsonlLines(fr.renderJsonl("done"));
    ASSERT_EQ(out.size(), 65u) << "full ring + trailer";
    for (const std::string &line : out)
        EXPECT_NO_THROW(minijson::parse(line));
}

TEST(FlightRecorderDeath, ZeroDepthIsFatal)
{
    FlightRecorderConfig fc;
    fc.enabled = true;
    fc.depth = 0;
    EXPECT_EXIT(FlightRecorder fr(fc), ::testing::ExitedWithCode(1),
                "depth");
}

} // namespace
} // namespace firesim
