/**
 * @file
 * ClusterMonitor unit tests: the heartbeat JSONL schema, the atomic
 * Prometheus text file, the round-cadence bookkeeping, and straggler
 * latching — all on a bare monitor (no cluster), so every field can be
 * pinned down deterministically.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hh"
#include "telemetry/monitor.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > pos)
            out.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return out;
}

TEST(ClusterMonitor, HeartbeatJsonlSchema)
{
    std::string hb = ::testing::TempDir() + "fsobs_heartbeat.jsonl";
    std::remove(hb.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    {
        ClusterMonitor mon(mc, 0, 1);
        mon.emitHeartbeat(1000, 3);
        mon.noteCheckpoint(1500);
        mon.emitHeartbeat(2500, 7);
        EXPECT_EQ(mon.heartbeats(), 2u);
    } // closes the heartbeat file

    std::vector<std::string> hb_lines = lines(readFile(hb));
    ASSERT_EQ(hb_lines.size(), 2u);

    minijson::ValuePtr first = minijson::parse(hb_lines[0]);
    EXPECT_DOUBLE_EQ(first->at("cycle").number, 1000.0);
    EXPECT_DOUBLE_EQ(first->at("round").number, 3.0);
    EXPECT_DOUBLE_EQ(first->at("rank").number, 0.0);
    EXPECT_DOUBLE_EQ(first->at("shards").number, 1.0);
    EXPECT_TRUE(first->has("sim_mhz"));
    EXPECT_TRUE(first->has("round_latency_ns"));
    EXPECT_TRUE(first->has("barrier_stall_ns"));
    EXPECT_TRUE(first->has("channel_occupancy"));
    EXPECT_TRUE(first->has("health_events"));
    EXPECT_TRUE(first->has("live_peers"));
    // No checkpoint yet: the age is JSON null, not a fake zero.
    EXPECT_TRUE(first->has("checkpoint_age_cycles"));
    EXPECT_FALSE(first->at("checkpoint_age_cycles").isNumber());
    // A single-process run still reports its own shard lane.
    const minijson::Value &shards = first->at("per_shard");
    ASSERT_TRUE(shards.isArray());
    ASSERT_EQ(shards.array.size(), 1u);
    EXPECT_DOUBLE_EQ(shards.at(0).at("rank").number, 0.0);
    EXPECT_TRUE(first->at("stragglers").array.empty());

    minijson::ValuePtr second = minijson::parse(hb_lines[1]);
    EXPECT_DOUBLE_EQ(second->at("cycle").number, 2500.0);
    EXPECT_DOUBLE_EQ(second->at("checkpoint_age_cycles").number,
                     1000.0);

    std::remove(hb.c_str());
}

TEST(ClusterMonitor, PrometheusFileIsRefreshedInPlace)
{
    std::string hb = ::testing::TempDir() + "fsobs_prom_hb.jsonl";
    std::string prom = ::testing::TempDir() + "fsobs_metrics.prom";
    std::remove(hb.c_str());
    std::remove(prom.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    mc.metricsPath = prom;
    ClusterMonitor mon(mc, 0, 1);

    mon.emitHeartbeat(1000, 0);
    std::string text = readFile(prom);
    EXPECT_NE(text.find("# TYPE firesim_sim_cycle counter"),
              std::string::npos);
    EXPECT_NE(text.find("firesim_sim_cycle{rank=\"0\"} 1000"),
              std::string::npos);
    EXPECT_NE(text.find("firesim_round_latency_ns"), std::string::npos);
    EXPECT_NE(text.find("firesim_live_peers{rank=\"0\"} 0"),
              std::string::npos);

    // The next heartbeat atomically replaces the file (no append).
    mon.emitHeartbeat(2000, 1);
    text = readFile(prom);
    EXPECT_NE(text.find("firesim_sim_cycle{rank=\"0\"} 2000"),
              std::string::npos);
    EXPECT_EQ(text.find("firesim_sim_cycle{rank=\"0\"} 1000"),
              std::string::npos);

    std::remove(hb.c_str());
    std::remove(prom.c_str());
}

TEST(ClusterMonitor, RoundCadenceDrivesHeartbeats)
{
    std::string hb = ::testing::TempDir() + "fsobs_cadence.jsonl";
    std::remove(hb.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 2;
    mc.heartbeatPath = hb;
    ClusterMonitor mon(mc, 0, 1);

    // Rounds 0..5 through the observer interface: heartbeats fire on
    // every second round completion (rounds 1, 3, 5).
    for (uint64_t round = 0; round < 6; ++round) {
        mon.onRoundStart(round * 400, round);
        mon.onRoundEnd(round * 400, round);
    }
    EXPECT_EQ(mon.heartbeats(), 3u);
    EXPECT_GT(mon.roundLatencyNs(), 0u)
        << "round timing must feed the latency EWMA";

    std::remove(hb.c_str());
}

TEST(ClusterMonitor, LatencySamplingIsStrided)
{
    // Round timing reads the host clock, which costs more than
    // everything else on the monitored round path — so only one round
    // per latencySampleEvery is timed, round 0 always included (the
    // EWMA must be nonzero from the first heartbeat on).
    std::string hb = ::testing::TempDir() + "fsobs_stride.jsonl";
    std::remove(hb.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 100; // no heartbeats in this test
    mc.heartbeatPath = hb;
    mc.latencySampleEvery = 4;
    ClusterMonitor mon(mc, 0, 1);
    for (uint64_t round = 0; round < 10; ++round) {
        mon.onRoundStart(round * 400, round);
        mon.onRoundEnd(round * 400, round);
    }
    EXPECT_EQ(mon.latencySamples(), 3u); // rounds 0, 4, 8
    EXPECT_GT(mon.roundLatencyNs(), 0u);

    MonitorConfig every;
    every.heartbeatEvery = 100;
    every.heartbeatPath = hb;
    every.latencySampleEvery = 1;
    ClusterMonitor dense(every, 0, 1);
    for (uint64_t round = 0; round < 10; ++round) {
        dense.onRoundStart(round * 400, round);
        dense.onRoundEnd(round * 400, round);
    }
    EXPECT_EQ(dense.latencySamples(), 10u);

    std::remove(hb.c_str());
}

TEST(ClusterMonitor, HealthEventsProviderFeedsHeartbeat)
{
    std::string hb = ::testing::TempDir() + "fsobs_health.jsonl";
    std::remove(hb.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    {
        ClusterMonitor mon(mc, 0, 1);
        mon.setHealthEventsProvider([] { return uint64_t(5); });
        mon.emitHeartbeat(100, 0);
    }
    std::vector<std::string> hb_lines = lines(readFile(hb));
    ASSERT_EQ(hb_lines.size(), 1u);
    EXPECT_DOUBLE_EQ(
        minijson::parse(hb_lines[0])->at("health_events").number, 5.0);
    std::remove(hb.c_str());
}

TEST(ClusterMonitor, HeartbeatsMirrorIntoTheFlightRecorder)
{
    std::string hb = ::testing::TempDir() + "fsobs_mirror.jsonl";
    std::remove(hb.c_str());

    FlightRecorderConfig fc;
    fc.enabled = true;
    fc.depth = 16;
    fc.path = ::testing::TempDir() + "fsobs_mirror_fr.jsonl";
    FlightRecorder fr(fc);

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    ClusterMonitor mon(mc, 0, 1);
    mon.setFlightRecorder(&fr);
    mon.emitHeartbeat(1000, 4);

    EXPECT_EQ(fr.recorded(), 1u);
    std::string jsonl = fr.renderJsonl("test");
    EXPECT_NE(jsonl.find("\"kind\": \"heartbeat\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"cycle\": 1000"), std::string::npos);

    std::remove(hb.c_str());
}

TEST(ClusterMonitor, RotatesLeftoverHeartbeatTrailToPrev)
{
    // A crashed run's heartbeat trail is the postmortem's primary
    // source; reopening with "wb" used to truncate it silently. The
    // monitor must rotate a non-empty leftover to `.prev` instead.
    std::string hb = ::testing::TempDir() + "fsobs_rotate.jsonl";
    std::string prev = hb + ".prev";
    std::remove(hb.c_str());
    std::remove(prev.c_str());
    {
        std::FILE *f = std::fopen(hb.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"cycle\": 123}\n", f);
        std::fclose(f);
    }

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    {
        ClusterMonitor mon(mc, 0, 1);
        mon.emitHeartbeat(1000, 0);
    }
    EXPECT_EQ(readFile(prev), "{\"cycle\": 123}\n")
        << "the pre-crash trail must survive as .prev";
    std::vector<std::string> fresh = lines(readFile(hb));
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_DOUBLE_EQ(minijson::parse(fresh[0])->at("cycle").number,
                     1000.0);

    std::remove(hb.c_str());
    std::remove(prev.c_str());
}

TEST(ClusterMonitor, EmptyLeftoverHeartbeatFileIsNotRotated)
{
    std::string hb = ::testing::TempDir() + "fsobs_rotate_empty.jsonl";
    std::string prev = hb + ".prev";
    std::remove(hb.c_str());
    std::remove(prev.c_str());
    {
        std::FILE *f = std::fopen(hb.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fclose(f); // zero bytes: nothing worth keeping
    }

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    ClusterMonitor mon(mc, 0, 1);
    std::FILE *p = std::fopen(prev.c_str(), "rb");
    EXPECT_EQ(p, nullptr) << "an empty leftover must not create .prev";
    if (p)
        std::fclose(p);

    std::remove(hb.c_str());
    std::remove(prev.c_str());
}

TEST(ClusterMonitor, OutOfRangeAlphaCannotUnderflowTheEwma)
{
    // The EWMA folds alpha into a /256 fixed-point weight w; an alpha
    // past 1.0 used to make (256 - w) underflow, multiplying the EWMA
    // by ~16.7e6 every sample. Clamped, alpha >= 1.0 simply tracks the
    // newest sample.
    std::string hb = ::testing::TempDir() + "fsobs_alpha.jsonl";
    std::remove(hb.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 100; // no heartbeats; only the EWMA matters
    mc.heartbeatPath = hb;
    mc.latencySampleEvery = 1;
    mc.ewmaAlpha = 5.0; // folds to w = 1280, far past the 256 ceiling
    ClusterMonitor mon(mc, 0, 1);
    for (uint64_t round = 0; round < 6; ++round) {
        mon.onRoundStart(round * 400, round);
        // Burn a measurable interval so every sample is nonzero and
        // the blend path (not the first-sample shortcut) runs.
        volatile uint64_t spin = 0;
        for (int i = 0; i < 5000; ++i)
            spin += static_cast<uint64_t>(i);
        mon.onRoundEnd(round * 400, round);
    }
    EXPECT_GT(mon.roundLatencyNs(), 0u);
    EXPECT_LT(mon.roundLatencyNs(), 1000000000000ull)
        << "a sub-ms round must never read as >1000 s of latency";

    std::remove(hb.c_str());
}

TEST(ClusterMonitor, StragglerSinkLatchesOncePerRank)
{
    // No transport: the only latency sample is the local EWMA, so
    // detection has nothing to compare against and must stay silent
    // no matter how aggressive the factor is.
    std::string hb = ::testing::TempDir() + "fsobs_straggler.jsonl";
    std::remove(hb.c_str());

    MonitorConfig mc;
    mc.heartbeatEvery = 1;
    mc.heartbeatPath = hb;
    mc.stragglerFactor = 0.0; // anything nonzero beats 0 x median
    ClusterMonitor mon(mc, 0, 1);
    int fired = 0;
    mon.setStragglerSink([&](uint32_t, uint64_t, uint64_t, uint64_t,
                             Cycles) { ++fired; });
    for (uint64_t round = 0; round < 4; ++round) {
        mon.onRoundStart(round * 400, round);
        mon.onRoundEnd(round * 400, round);
    }
    EXPECT_EQ(fired, 0) << "a lone rank can never straggle";
    EXPECT_TRUE(mon.stragglers().empty());

    std::remove(hb.c_str());
}

} // namespace
} // namespace firesim
