/**
 * @file
 * The observability plane end to end, on real sharded clusters:
 *
 *  - a 2-shard loopback run with a dump directory produces rank 0
 *    merged dumps equivalent to the single-process run, modulo the
 *    `rankK.` name prefixes and host-timing-dependent keys;
 *  - a monitored 2-shard run emits a parseable heartbeat JSONL stream
 *    with per-shard latency lanes, refreshes the Prometheus file, and
 *    latches stragglers through the HealthMonitor;
 *  - SIGKILLing rank 1 mid-run leaves rank 0 with a flight-recorder
 *    postmortem whose last events are the peer-loss health transition.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/remote/socket.hh"
#include "snapshot/snapshot.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

std::vector<std::string>
jsonlLines(const std::string &text)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > pos)
            out.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return out;
}

std::string
freshDir(const char *name)
{
    std::string dir = ::testing::TempDir() + name;
    mkdir(dir.c_str(), 0755);
    return dir;
}

void
spawnPing(NodeSystem &from, size_t to_index, Cycles *rtt_out)
{
    from.os().spawn("ping", -1, [&from, to_index, rtt_out]() -> Task<> {
        *rtt_out = co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

/** Deterministic per-component stats of @p snap: every
 *  cluster.switch* / cluster.node* entry (cluster.fabric.* and
 *  cluster.shard.* are per-process host accounting). */
std::map<std::string, double>
componentStats(const StatSnapshot &snap)
{
    std::map<std::string, double> out;
    for (const auto &[name, value] : snap.values)
        if (name.rfind("cluster.switch", 0) == 0 ||
            name.rfind("cluster.node", 0) == 0)
            out.emplace(name, value);
    return out;
}

TEST(ObsCluster, MergedDumpMatchesSingleProcessRun)
{
    constexpr Cycles kRun = 300000;
    ClusterConfig base;
    base.linkLatency = 400;
    base.telemetry.enabled = true;
    base.telemetry.samplePeriod = 2000;

    // Reference: the same workload in one process.
    std::map<std::string, double> want;
    Cycles ref_rtt = 0;
    {
        Cluster ref(topologies::singleTor(2), base);
        spawnPing(ref.node(0), 1, &ref_rtt);
        ref.run(kRun);
        ASSERT_GT(ref_rtt, 0u);
        want = componentStats(
            ref.telemetry()->registry().snapshot(ref.now()));
        ASSERT_FALSE(want.empty());
    }

    // Two shards over a loopback socketpair, each with its own dump
    // directory; rank 0's gets the merged cross-shard dumps.
    std::string dir0 = freshDir("fsobs_merged_r0");
    std::string dir1 = freshDir("fsobs_merged_r1");
    for (const char *f :
         {"/merged_stats.json", "/merged_stats.csv",
          "/merged_trace.json"})
        std::remove((dir0 + f).c_str());

    auto [fd0, fd1] = localSocketPair();
    ClusterConfig cc0 = base, cc1 = base;
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    cc0.telemetry.dumpDir = dir0;
    cc1.telemetry.dumpDir = dir1;
    // Exercise the mid-run piggyback path, not only the final
    // exchange: every 8th RoundDone carries a Stats frame.
    cc0.telemetry.aggregateEvery = cc1.telemetry.aggregateEvery = 8;
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    Cycles rtt = 0;
    std::thread shard1([&] {
        Cluster c1(topologies::singleTor(2), std::move(cc1),
                   std::move(fds1));
        c1.run(kRun);
    });
    {
        Cluster c0(topologies::singleTor(2), std::move(cc0),
                   std::move(fds0));
        spawnPing(c0.node(0), 1, &rtt);
        c0.run(kRun);
        ASSERT_NE(c0.aggregator(), nullptr);
        // The piggyback already delivered rank 1's telemetry mid-run.
        EXPECT_TRUE(c0.aggregator()->hasRank(1));
    } // ~Cluster: final stats exchange, then the merged dumps
    shard1.join();
    EXPECT_EQ(rtt, ref_rtt);

    // merged_stats.json: same component tree as the single-process
    // dump once the rankK. prefixes are stripped; host-timing keys
    // (cluster.shard.*, cluster.fabric.*) are per-process and skipped.
    minijson::ValuePtr doc =
        minijson::parse(readFile(dir0 + "/merged_stats.json"));
    EXPECT_DOUBLE_EQ(doc->at("cycle").number,
                     static_cast<double>(kRun));
    const minijson::Value &stats = doc->at("stats");
    ASSERT_TRUE(stats.isObject());
    bool saw_rank0 = false, saw_rank1 = false;
    std::map<std::string, double> got;
    for (const auto &[name, value] : stats.object) {
        ASSERT_EQ(name.rfind("rank", 0), 0u)
            << "merged stat '" << name << "' is not rank-prefixed";
        size_t dot = name.find('.');
        ASSERT_NE(dot, std::string::npos);
        saw_rank0 |= name.rfind("rank0.", 0) == 0;
        saw_rank1 |= name.rfind("rank1.", 0) == 0;
        std::string bare = name.substr(dot + 1);
        if (bare.rfind("cluster.switch", 0) == 0 ||
            bare.rfind("cluster.node", 0) == 0) {
            // Each component is owned by exactly one rank.
            ASSERT_EQ(got.count(bare), 0u) << bare;
            got.emplace(bare, value->number);
        }
    }
    EXPECT_TRUE(saw_rank0);
    EXPECT_TRUE(saw_rank1);
    ASSERT_EQ(got.size(), want.size());
    for (const auto &[name, value] : want)
        EXPECT_DOUBLE_EQ(got.at(name), value) << name;

    // merged_stats.csv: same names, one rank-prefixed row per stat.
    std::string csv = readFile(dir0 + "/merged_stats.csv");
    EXPECT_EQ(csv.rfind("# cycle 300000\nstat,value\n", 0), 0u);
    EXPECT_NE(csv.find("rank1.cluster.node1."), std::string::npos);

    // merged_trace.json: one process lane per rank, phases on the
    // simulated clock (the whole run is one run() call per rank).
    minijson::ValuePtr trace =
        minijson::parse(readFile(dir0 + "/merged_trace.json"));
    size_t lanes = 0, spans = 0;
    for (const minijson::ValuePtr &ev :
         trace->at("traceEvents").array) {
        if (ev->at("ph").str == "M") {
            ++lanes;
            continue;
        }
        ++spans;
        EXPECT_DOUBLE_EQ(ev->at("ts").number, 0.0);
        EXPECT_DOUBLE_EQ(ev->at("dur").number,
                         static_cast<double>(kRun));
    }
    EXPECT_EQ(lanes, 2u);
    EXPECT_EQ(spans, 2u);

    // The per-rank local dumps exist too (regular dumpAtExit path).
    EXPECT_FALSE(readFile(dir0 + "/stats.json").empty());
    EXPECT_FALSE(readFile(dir1 + "/stats.json").empty());
}

TEST(ObsCluster, ShardedHeartbeatsCoverEveryRankAndLatchStragglers)
{
    constexpr Cycles kRun = 40000; // 100 rounds at linkLatency 400
    std::string hb_base = ::testing::TempDir() + "fsobs_cluster_hb.jsonl";
    std::string prom_base = ::testing::TempDir() + "fsobs_cluster.prom";
    std::string hb0 = snapshotRankPath(hb_base, 2, 0);
    std::string prom0 = snapshotRankPath(prom_base, 2, 0);
    std::remove(hb0.c_str());
    std::remove(snapshotRankPath(hb_base, 2, 1).c_str());
    std::remove(prom0.c_str());

    auto [fd0, fd1] = localSocketPair();
    ClusterConfig cc0, cc1;
    cc0.linkLatency = cc1.linkLatency = 400;
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    cc0.monitor.heartbeatEvery = cc1.monitor.heartbeatEvery = 4;
    cc0.monitor.heartbeatPath = cc1.monitor.heartbeatPath = hb_base;
    cc0.monitor.metricsPath = prom_base;
    // With factor 0 any nonzero latency exceeds 0 x median, so both
    // ranks latch deterministically once both have reported samples —
    // the detection plumbing without depending on host timing.
    cc0.monitor.stragglerFactor = 0.0;
    cc0.flightRecorder.enabled = true;
    cc0.flightRecorder.path =
        ::testing::TempDir() + "fsobs_cluster_fr.jsonl";
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    uint64_t hb1_count = 0;
    std::thread shard1([&] {
        Cluster c1(topologies::singleTor(2), std::move(cc1),
                   std::move(fds1));
        c1.run(kRun);
        hb1_count = c1.clusterMonitor()->heartbeats();
    });
    uint64_t straggler_events = 0;
    std::vector<uint32_t> latched;
    uint64_t hb0_count = 0;
    {
        Cluster c0(topologies::singleTor(2), std::move(cc0),
                   std::move(fds0));
        c0.run(kRun);
        ASSERT_NE(c0.clusterMonitor(), nullptr);
        hb0_count = c0.clusterMonitor()->heartbeats();
        latched = c0.clusterMonitor()->stragglers();
        straggler_events =
            c0.health().count(FaultEvent::Kind::StragglerDetected);
    }
    shard1.join();

    EXPECT_GE(hb0_count, 20u); // ~100 rounds / heartbeatEvery 4
    EXPECT_GE(hb1_count, 20u);
    // Factor 0 condemns every sampled rank; both must have latched,
    // each raising one StragglerDetected health event.
    ASSERT_EQ(latched.size(), 2u);
    EXPECT_EQ(latched[0], 0u);
    EXPECT_EQ(latched[1], 1u);
    EXPECT_EQ(straggler_events, 2u);

    // The heartbeat stream: every line parses, and once the peer has
    // reported, the per-shard array carries both ranks' latencies.
    std::vector<std::string> hb_lines = jsonlLines(readFile(hb0));
    ASSERT_GE(hb_lines.size(), hb0_count);
    for (const std::string &line : hb_lines)
        EXPECT_NO_THROW(minijson::parse(line));
    minijson::ValuePtr last = minijson::parse(hb_lines.back());
    EXPECT_DOUBLE_EQ(last->at("rank").number, 0.0);
    EXPECT_DOUBLE_EQ(last->at("shards").number, 2.0);
    const minijson::Value &shards = last->at("per_shard");
    ASSERT_EQ(shards.array.size(), 2u);
    EXPECT_DOUBLE_EQ(shards.at(0).at("rank").number, 0.0);
    EXPECT_DOUBLE_EQ(shards.at(1).at("rank").number, 1.0);
    EXPECT_GT(shards.at(0).at("round_latency_ns").number, 0.0);
    EXPECT_GT(shards.at(1).at("round_latency_ns").number, 0.0)
        << "the peer's RoundDone-reported latency never arrived";
    EXPECT_EQ(last->at("stragglers").array.size(), 2u);

    // The Prometheus file holds the final scrape.
    std::string prom = readFile(prom0);
    EXPECT_NE(prom.find("firesim_sim_cycle{rank=\"0\"} 40000"),
              std::string::npos);
    EXPECT_NE(prom.find("firesim_stragglers{rank=\"0\"} 2"),
              std::string::npos);

    // Straggler latching mirrored into the flight recorder.
    std::remove(hb0.c_str());
    std::remove(snapshotRankPath(hb_base, 2, 1).c_str());
    std::remove(prom0.c_str());
}

TEST(ObsCluster, StragglersDetectWithoutHeartbeatsAndUnlatchDeadRanks)
{
    // Straggler detection rides the latency-sampling stride, not the
    // heartbeat cadence: a run with heartbeats off entirely (only a
    // Prometheus path keeps the monitor alive) must still latch — and
    // a latched rank that dies must be unlatched, because a corpse is
    // not a straggler.
    constexpr Cycles kHalf = 20000; // 50 rounds at linkLatency 400
    std::string prom_base = ::testing::TempDir() + "fsobs_nohb.prom";
    std::remove(snapshotRankPath(prom_base, 2, 0).c_str());
    std::remove(snapshotRankPath(prom_base, 2, 1).c_str());

    auto [fd0, fd1] = localSocketPair();
    ClusterConfig cc0, cc1;
    cc0.linkLatency = cc1.linkLatency = 400;
    cc0.shard.shards = cc1.shard.shards = 2;
    cc0.shard.rank = 0;
    cc1.shard.rank = 1;
    cc0.monitor.heartbeatEvery = cc1.monitor.heartbeatEvery = 0;
    cc0.monitor.metricsPath = cc1.monitor.metricsPath = prom_base;
    cc0.monitor.latencySampleEvery = cc1.monitor.latencySampleEvery = 1;
    cc0.monitor.stragglerFactor = cc1.monitor.stragglerFactor = 0.0;
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    std::thread shard1([&] {
        Cluster c1(topologies::singleTor(2), std::move(cc1),
                   std::move(fds1));
        c1.run(kHalf);
        // Destruction sends Bye: rank 0 sees an orderly mid-run exit.
    });
    Cluster c0(topologies::singleTor(2), std::move(cc0),
               std::move(fds0));
    c0.run(kHalf);
    ASSERT_NE(c0.clusterMonitor(), nullptr);
    EXPECT_EQ(c0.clusterMonitor()->heartbeats(), 0u)
        << "heartbeats are off; detection must not depend on them";
    std::vector<uint32_t> latched = c0.clusterMonitor()->stragglers();
    ASSERT_EQ(latched.size(), 2u)
        << "factor 0 must latch both ranks from the sampled path alone";
    EXPECT_EQ(latched[0], 0u);
    EXPECT_EQ(latched[1], 1u);
    shard1.join();

    // Rank 1 is gone; rank 0 keeps running degraded. The detector must
    // drop the dead rank from the latched set.
    c0.run(kHalf);
    latched = c0.clusterMonitor()->stragglers();
    ASSERT_EQ(latched.size(), 1u)
        << "a dead rank must be unlatched from firesim_stragglers";
    EXPECT_EQ(latched[0], 0u);
    EXPECT_GE(c0.health().count(FaultEvent::Kind::PeerShardLost), 1u);

    std::remove(snapshotRankPath(prom_base, 2, 0).c_str());
    std::remove(snapshotRankPath(prom_base, 2, 1).c_str());
}

TEST(ObsCluster, KilledPeerLeavesAPostmortemOnRankZero)
{
    constexpr Cycles kChildRun = 8000;
    constexpr Cycles kRun = 80000;
    std::string fr_base = ::testing::TempDir() + "fsobs_postmortem.jsonl";
    std::string fr0 = snapshotRankPath(fr_base, 2, 0);
    std::remove(fr0.c_str());

    auto [fd0, fd1] = localSocketPair();
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Rank 1, in a real child process: run a short while, then die
        // the ugliest way possible — no Bye, no destructor, SIGKILL.
        { SocketFd drop = std::move(fd0); }
        ClusterConfig cc1;
        cc1.linkLatency = 400;
        cc1.shard.shards = 2;
        cc1.shard.rank = 1;
        std::vector<std::pair<uint32_t, SocketFd>> fds1;
        fds1.emplace_back(0, std::move(fd1));
        Cluster c1(topologies::singleTor(2), std::move(cc1),
                   std::move(fds1));
        c1.run(kChildRun);
        ::raise(SIGKILL);
        ::_exit(0); // not reached
    }
    { SocketFd drop = std::move(fd1); }

    ClusterConfig cc0;
    cc0.linkLatency = 400;
    cc0.shard.shards = 2;
    cc0.shard.rank = 0;
    cc0.shard.recvTimeoutMs = 5000;
    cc0.flightRecorder.enabled = true;
    cc0.flightRecorder.path = fr_base;
    std::vector<std::pair<uint32_t, SocketFd>> fds0;
    fds0.emplace_back(1, std::move(fd0));
    uint64_t peer_lost = 0;
    {
        Cluster c0(topologies::singleTor(2), std::move(cc0),
                   std::move(fds0));
        c0.run(kRun); // survives the kill, degraded
        EXPECT_EQ(c0.now(), kRun);
        EXPECT_TRUE(c0.shardTransport()->anyPeerLost());
        peer_lost =
            c0.health().count(FaultEvent::Kind::PeerShardLost);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    EXPECT_EQ(peer_lost, 1u);

    // The postmortem was dumped at the moment of loss; its last
    // events are the peer-loss health transition.
    std::vector<std::string> out = jsonlLines(readFile(fr0));
    ASSERT_GE(out.size(), 3u)
        << "flight-recorder postmortem missing or empty";
    minijson::ValuePtr trailer = minijson::parse(out.back());
    EXPECT_NE(trailer->at("flight_recorder_end")
                  .at("reason")
                  .str.find("peer shard 1 lost"),
              std::string::npos);
    minijson::ValuePtr loss = minijson::parse(out[out.size() - 2]);
    EXPECT_EQ(loss->at("kind").str, "peer-loss");
    EXPECT_DOUBLE_EQ(loss->at("a").number, 1.0) << "lost peer rank";
    minijson::ValuePtr health = minijson::parse(out[out.size() - 3]);
    EXPECT_EQ(health->at("kind").str, "health-event");
    EXPECT_NE(health->at("detail").str.find("peer"),
              std::string::npos);

    std::remove(fr0.c_str());
}

} // namespace
} // namespace firesim
