/**
 * @file
 * Tests for the NIC-hardware fast-path hooks (the PFA's attachment
 * points, Section VI) and socket backpressure behaviour.
 */

#include <gtest/gtest.h>

#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

struct HwPathFixture : public ::testing::Test
{
    void
    boot(NetConfig net = NetConfig{})
    {
        ClusterConfig cc;
        cc.net = net;
        cluster = std::make_unique<Cluster>(topologies::singleTor(2), cc);
    }

    /**
     * Round-trip latency of a 64-byte request/echo on port @p port,
     * as observed by the requesting thread.
     */
    Cycles
    echoRtt(uint16_t port)
    {
        NodeSystem &server = cluster->node(0);
        NodeSystem &client = cluster->node(1);
        auto rtt = std::make_shared<Cycles>(0);
        server.os().spawn("echo", -1, [&server, port]() -> Task<> {
            UdpSocket sock(server.net(), port);
            while (true) {
                Datagram d = co_await sock.recv();
                co_await sock.sendTo(d.srcIp, d.srcPort, d.data);
            }
        });
        client.os().spawn("req", -1, [&client, port, rtt]() -> Task<> {
            UdpSocket sock(client.net(),
                           static_cast<uint16_t>(port + 1000));
            Cycles start = client.os().now();
            std::vector<uint8_t> msg(64, 1);
            co_await sock.sendTo(Cluster::ipFor(0), port, msg);
            (void)co_await sock.recv();
            *rtt = client.os().now() - start;
            while (true)
                co_await client.os().sleepFor(1000000);
        });
        cluster->runUs(500.0);
        return *rtt;
    }

    std::unique_ptr<Cluster> cluster;
};

TEST_F(HwPathFixture, HwRxPortCutsDeliveryCost)
{
    boot();
    Cycles sw_rtt = echoRtt(7000);

    boot();
    // Claim the client's receive port for "hardware": the reply is
    // delivered for 100 cycles instead of the full rx-stack cost.
    cluster->node(1).net().setHwRxPort(8000 + 1000, 100);
    Cycles hw_rtt = echoRtt(8000);

    // One rx-stack traversal (~8 us = 25600 cycles) left the path.
    EXPECT_LT(hw_rtt + 15000, sw_rtt);
}

TEST_F(HwPathFixture, ClearHwRxPortRestoresSoftwarePath)
{
    boot();
    cluster->node(1).net().setHwRxPort(9000 + 1000, 100);
    cluster->node(1).net().clearHwRxPort(9000 + 1000);
    Cycles rtt = echoRtt(9000);

    boot();
    Cycles sw_rtt = echoRtt(9000);
    // Same path once cleared (allowing scheduler jitter).
    EXPECT_NEAR(static_cast<double>(rtt), static_cast<double>(sw_rtt),
                2000.0);
}

TEST_F(HwPathFixture, SocketRxCapDropsExcessDatagrams)
{
    NetConfig net;
    net.socketRxCap = 4;
    boot(net);
    NodeSystem &server = cluster->node(0);
    NodeSystem &client = cluster->node(1);

    // Bind a socket that never reads; flood it.
    server.os().spawn("deaf", -1, [&server]() -> Task<> {
        UdpSocket sock(server.net(), 7777);
        while (true)
            co_await server.os().sleepFor(100000000);
    });
    client.os().spawn("flood", -1, [&client]() -> Task<> {
        UdpSocket sock(client.net(), 7778);
        for (int i = 0; i < 12; ++i) {
            std::vector<uint8_t> msg(32, uint8_t(i));
            co_await sock.sendTo(Cluster::ipFor(0), 7777, msg);
        }
        while (true)
            co_await client.os().sleepFor(100000000);
    });
    cluster->runUs(1000.0);
    const NetStackStats &stats = server.net().stats();
    EXPECT_EQ(stats.udpDelivered.value(), 4u);
    EXPECT_EQ(stats.socketOverflowDrops.value(), 8u);
}

TEST_F(HwPathFixture, MultiqueueRssKeepsOrderPerSocket)
{
    NetConfig net;
    net.rxQueues = 4;
    boot(net);
    NodeSystem &server = cluster->node(0);
    NodeSystem &client = cluster->node(1);
    auto in_order = std::make_shared<bool>(true);
    auto count = std::make_shared<int>(0);

    server.os().spawn("sink", -1, [&server, in_order, count]() -> Task<> {
        UdpSocket sock(server.net(), 6500);
        uint8_t expect = 0;
        while (true) {
            Datagram d = co_await sock.recv();
            if (d.data.empty() || d.data[0] != expect)
                *in_order = false;
            ++expect;
            ++*count;
        }
    });
    client.os().spawn("src", -1, [&client]() -> Task<> {
        UdpSocket sock(client.net(), 6501);
        for (uint8_t i = 0; i < 30; ++i) {
            std::vector<uint8_t> msg = {i};
            co_await sock.sendTo(Cluster::ipFor(0), 6500, msg);
        }
        while (true)
            co_await client.os().sleepFor(100000000);
    });
    cluster->runUs(2000.0);
    EXPECT_EQ(*count, 30);
    EXPECT_TRUE(*in_order);
}

} // namespace
} // namespace firesim
