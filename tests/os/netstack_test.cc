#include <gtest/gtest.h>

#include "manager/cluster.hh"
#include "manager/topology.hh"

namespace firesim
{
namespace
{

/** An 8-node, single-ToR cluster: the paper's Fig. 5 target. */
struct ClusterFixture : public ::testing::Test
{
    void
    boot(uint32_t nodes = 8, Cycles link_latency = 6400)
    {
        ClusterConfig cc;
        cc.linkLatency = link_latency;
        cluster = std::make_unique<Cluster>(topologies::singleTor(nodes),
                                            cc);
    }

    std::unique_ptr<Cluster> cluster;
};

TEST_F(ClusterFixture, PingCompletesWithPlausibleRtt)
{
    boot();
    Cycles rtt = 0;
    bool done = false;
    NodeSystem &a = cluster->node(0);
    Ip dst = Cluster::ipFor(1);
    a.os().spawn("ping", -1, [&]() -> Task<> {
        rtt = co_await a.net().ping(dst);
        done = true;
    });
    cluster->runUs(300.0);
    ASSERT_TRUE(done);
    // Ideal network RTT: 4 x 6400 + 2 x 10 = 25620 cycles (~8 us).
    // Everything above that is modeled OS overhead; the paper reports
    // ~34 us of it, so accept a generous window here (the precise
    // calibration is asserted by the Fig. 5 benchmark).
    TargetClock clk;
    double rtt_us = clk.usFromCycles(rtt);
    EXPECT_GT(rtt_us, 8.0);
    EXPECT_LT(rtt_us, 80.0);
}

TEST_F(ClusterFixture, PingRttScalesWithLinkLatency)
{
    // Fig. 5: measured RTT parallels the ideal line 4L + 2n.
    std::vector<double> overheads;
    for (Cycles lat : {3200u, 6400u, 12800u}) {
        boot(8, lat);
        Cycles rtt = 0;
        bool done = false;
        NodeSystem &a = cluster->node(0);
        Ip dst = Cluster::ipFor(1);
        a.os().spawn("ping", -1, [&]() -> Task<> {
            rtt = co_await a.net().ping(dst);
            done = true;
        });
        cluster->runUs(500.0);
        ASSERT_TRUE(done);
        double ideal = 4.0 * static_cast<double>(lat) + 20.0;
        overheads.push_back(static_cast<double>(rtt) - ideal);
    }
    // The software overhead must be latency-independent: the curves are
    // parallel. Allow a small tolerance for scheduling quantization.
    EXPECT_NEAR(overheads[0], overheads[1], 2000.0);
    EXPECT_NEAR(overheads[1], overheads[2], 2000.0);
}

TEST_F(ClusterFixture, UdpEchoRoundTrip)
{
    boot();
    NodeSystem &server = cluster->node(0);
    NodeSystem &client = cluster->node(1);
    std::vector<uint8_t> got;
    bool replied = false;

    server.os().spawn("server", -1, [&]() -> Task<> {
        UdpSocket sock(server.net(), 7); // echo port
        while (true) {
            Datagram d = co_await sock.recv();
            co_await sock.sendTo(d.srcIp, d.srcPort, d.data);
        }
    });
    client.os().spawn("client", -1, [&]() -> Task<> {
        UdpSocket sock(client.net(), 9000);
        std::vector<uint8_t> msg = {1, 2, 3, 4};
        co_await sock.sendTo(Cluster::ipFor(0), 7, msg);
        Datagram d = co_await sock.recv();
        got = d.data;
        replied = true;
        // Keep the socket alive while the node keeps running.
        while (true)
            co_await client.os().sleepFor(1000000);
    });
    cluster->runUs(500.0);
    ASSERT_TRUE(replied);
    EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST_F(ClusterFixture, UdpPayloadIntegrityAcrossSizes)
{
    boot();
    NodeSystem &server = cluster->node(2);
    NodeSystem &client = cluster->node(3);
    std::vector<std::vector<uint8_t>> received;

    server.os().spawn("sink", -1, [&]() -> Task<> {
        UdpSocket sock(server.net(), 5000);
        while (true) {
            Datagram d = co_await sock.recv();
            received.push_back(d.data);
        }
    });
    client.os().spawn("source", -1, [&]() -> Task<> {
        UdpSocket sock(client.net(), 5001);
        std::vector<uint32_t> sizes = {1, 8, 9, 100, 1400};
        for (uint32_t size : sizes) {
            std::vector<uint8_t> payload(size);
            for (uint32_t i = 0; i < size; ++i)
                payload[i] = static_cast<uint8_t>(i * 13 + size);
            co_await sock.sendTo(Cluster::ipFor(2), 5000, payload);
        }
        while (true)
            co_await client.os().sleepFor(1000000);
    });
    cluster->runUs(1000.0);
    ASSERT_EQ(received.size(), 5u);
    uint32_t idx = 0;
    for (uint32_t size : {1u, 8u, 9u, 100u, 1400u}) {
        ASSERT_EQ(received[idx].size(), size);
        for (uint32_t i = 0; i < size; ++i)
            ASSERT_EQ(received[idx][i],
                      static_cast<uint8_t>(i * 13 + size));
        ++idx;
    }
}

TEST_F(ClusterFixture, DatagramToUnboundPortIsCounted)
{
    boot();
    NodeSystem &client = cluster->node(0);
    client.os().spawn("source", -1, [&]() -> Task<> {
        UdpSocket sock(client.net(), 1234);
        std::vector<uint8_t> one = {9};
        co_await sock.sendTo(Cluster::ipFor(1), 4321, one);
        while (true)
            co_await client.os().sleepFor(1000000);
    });
    cluster->runUs(200.0);
    EXPECT_EQ(cluster->node(1).net().stats().udpNoPort.value(), 1u);
}

TEST_F(ClusterFixture, ManyPingsAllComplete)
{
    boot();
    int completed = 0;
    NodeSystem &a = cluster->node(0);
    a.os().spawn("pinger", -1, [&]() -> Task<> {
        for (int i = 0; i < 10; ++i) {
            co_await a.net().ping(Cluster::ipFor(1));
            ++completed;
        }
    });
    cluster->runUs(2000.0);
    EXPECT_EQ(completed, 10);
    EXPECT_EQ(cluster->node(1).net().stats().icmpEchoed.value(), 10u);
}

TEST_F(ClusterFixture, CrossTrafficDoesNotCorruptStreams)
{
    boot();
    // Every even node sends 20 numbered datagrams to the next odd node;
    // each receiver checks ordering and content.
    int ok_streams = 0;
    for (size_t pair = 0; pair < 4; ++pair) {
        NodeSystem &rx = cluster->node(2 * pair + 1);
        NodeSystem &tx = cluster->node(2 * pair);
        rx.os().spawn("rx", -1, [&, pair]() -> Task<> {
            UdpSocket sock(rx.net(), 6000);
            for (uint8_t i = 0; i < 20; ++i) {
                Datagram d = co_await sock.recv();
                if (d.data.size() != 2 || d.data[0] != pair ||
                    d.data[1] != i) {
                    co_return; // corrupt/missing -> stream not counted
                }
            }
            ++ok_streams;
        });
        tx.os().spawn("tx", -1, [&, pair]() -> Task<> {
            UdpSocket sock(tx.net(), 6001);
            for (uint8_t i = 0; i < 20; ++i) {
                std::vector<uint8_t> msg = {static_cast<uint8_t>(pair), i};
                co_await sock.sendTo(Cluster::ipFor(2 * pair + 1), 6000,
                                     msg);
            }
            while (true)
                co_await tx.os().sleepFor(1000000);
        });
    }
    cluster->runUs(3000.0);
    EXPECT_EQ(ok_streams, 4);
}

TEST(NetStackDeath, DoublePortBindIsFatal)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    NodeSystem &n = cluster.node(0);
    bool spawned = false;
    n.os().spawn("binder", -1, [&]() -> Task<> {
        spawned = true;
        UdpSocket a(n.net(), 80);
        EXPECT_EXIT({ UdpSocket b(n.net(), 80); },
                    ::testing::ExitedWithCode(1), "already bound");
        while (true)
            co_await n.os().sleepFor(1000000);
    });
    cluster.runUs(10.0);
    EXPECT_TRUE(spawned);
}

TEST(NetStackDeath, OversizeDatagramIsFatal)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    NodeSystem &n = cluster.node(0);
    n.os().spawn("big", -1, [&]() -> Task<> {
        UdpSocket sock(n.net(), 80);
        std::vector<uint8_t> huge(4000, 0);
        EXPECT_EXIT(
            {
                auto t = sock.sendTo(Cluster::ipFor(1), 81, huge);
                (void)t;
            },
            ::testing::ExitedWithCode(1), "MTU");
        while (true)
            co_await n.os().sleepFor(1000000);
    });
    cluster.runUs(10.0);
}

} // namespace
} // namespace firesim
