#include <gtest/gtest.h>

#include <vector>

#include "os/simos.hh"
#include "sim/event_queue.hh"

namespace firesim
{
namespace
{

/** A 4-core OS on a bare event queue (no network). */
struct OsFixture : public ::testing::Test
{
    OsFixture()
    {
        cfg.cores = 4;
        cfg.ctxSwitchCycles = 100;
        cfg.syscallCycles = 50;
        cfg.wakeLatency = 10;
        cfg.timeslice = 10000;
    }

    void
    boot()
    {
        os = std::make_unique<SimOS>(cfg, eq);
    }

    OsConfig cfg;
    EventQueue eq;
    std::unique_ptr<SimOS> os;
};

TEST_F(OsFixture, CpuBurstConsumesExactCycles)
{
    boot();
    Cycles finished = 0;
    os->spawn("worker", -1, [&]() -> Task<> {
        co_await os->cpu(1234);
        finished = eq.now();
    });
    eq.drain();
    EXPECT_EQ(finished, 1234u);
    EXPECT_EQ(os->busyCycles(), 1234u);
    EXPECT_EQ(os->threadsAlive(), 0u);
}

TEST_F(OsFixture, SequentialBurstsAccumulate)
{
    boot();
    Cycles finished = 0;
    os->spawn("worker", -1, [&]() -> Task<> {
        co_await os->cpu(100);
        co_await os->cpu(200);
        co_await os->cpu(300);
        finished = eq.now();
    });
    eq.drain();
    EXPECT_EQ(finished, 600u);
}

TEST_F(OsFixture, SleepBlocksWithoutCpu)
{
    boot();
    Cycles woke = 0;
    os->spawn("sleeper", -1, [&]() -> Task<> {
        co_await os->sleepFor(5000);
        woke = eq.now();
    });
    eq.drain();
    EXPECT_EQ(woke, 5000u);
    EXPECT_EQ(os->busyCycles(), 0u);
}

TEST_F(OsFixture, ThreadsRunInParallelOnSeparateCores)
{
    boot();
    std::vector<Cycles> done;
    for (int i = 0; i < 4; ++i) {
        os->spawn("w", -1, [&]() -> Task<> {
            co_await os->cpu(1000);
            done.push_back(eq.now());
        });
    }
    eq.drain();
    ASSERT_EQ(done.size(), 4u);
    for (Cycles c : done)
        EXPECT_EQ(c, 1000u); // 4 threads, 4 cores: no serialization
}

TEST_F(OsFixture, FiveThreadsOnFourCoresSerialize)
{
    boot();
    std::vector<Cycles> done;
    for (int i = 0; i < 5; ++i) {
        os->spawn("w", -1, [&]() -> Task<> {
            co_await os->cpu(1000);
            done.push_back(eq.now());
        });
    }
    eq.drain();
    ASSERT_EQ(done.size(), 5u);
    // Four finish together; the fifth shares a core so it finishes
    // later (it was timesliced with one of the others or queued).
    Cycles latest = *std::max_element(done.begin(), done.end());
    EXPECT_GT(latest, 1000u);
}

TEST_F(OsFixture, PinnedThreadsShareTheirCore)
{
    boot();
    std::vector<Cycles> done;
    for (int i = 0; i < 2; ++i) {
        os->spawn("pinned", 0, [&]() -> Task<> {
            co_await os->cpu(1000);
            done.push_back(eq.now());
        });
    }
    eq.drain();
    ASSERT_EQ(done.size(), 2u);
    // Both pinned to core 0: total busy 2000 (+ctx switch) on one core.
    Cycles latest = *std::max_element(done.begin(), done.end());
    EXPECT_GE(latest, 2000u);
}

TEST_F(OsFixture, TimesliceRoundRobinInterleaves)
{
    boot();
    cfg.timeslice = 500;
    os = std::make_unique<SimOS>(cfg, eq);
    std::vector<int> completion_order;
    for (int i = 0; i < 2; ++i) {
        os->spawn("rr", 0, [&, i]() -> Task<> {
            co_await os->cpu(1000);
            completion_order.push_back(i);
        });
    }
    eq.drain();
    ASSERT_EQ(completion_order.size(), 2u);
    // With a 500-cycle slice and 1000-cycle bursts, the first spawned
    // thread is preempted once and still finishes first.
    EXPECT_EQ(completion_order[0], 0);
}

TEST_F(OsFixture, WaitQueueBlocksUntilNotified)
{
    boot();
    WaitQueue wq;
    Cycles woke = 0;
    os->spawn("waiter", -1, [&]() -> Task<> {
        co_await os->waitOn(wq);
        woke = eq.now();
    });
    os->spawn("notifier", -1, [&]() -> Task<> {
        co_await os->cpu(2000);
        wq.notifyOne();
    });
    eq.drain();
    // Wake latency (10) applies after the notify at 2000.
    EXPECT_GE(woke, 2000u + cfg.wakeLatency);
    EXPECT_LE(woke, 2000u + cfg.wakeLatency + cfg.ctxSwitchCycles);
}

TEST_F(OsFixture, NotifyAllWakesEveryWaiter)
{
    boot();
    WaitQueue wq;
    int woken = 0;
    for (int i = 0; i < 3; ++i) {
        os->spawn("waiter", -1, [&]() -> Task<> {
            co_await os->waitOn(wq);
            ++woken;
        });
    }
    os->spawn("notifier", -1, [&]() -> Task<> {
        co_await os->cpu(100);
        wq.notifyAll();
    });
    eq.drain();
    EXPECT_EQ(woken, 3);
}

TEST_F(OsFixture, KernelThreadPreemptsUserThread)
{
    boot();
    WaitQueue wq;
    Cycles kernel_done = 0;
    // Let the kernel thread block before loading the cores.
    os->spawnKernel("softirq-like", [&]() -> Task<> {
        co_await os->waitOn(wq);
        co_await os->cpu(500);
        kernel_done = eq.now();
    });
    eq.runUntil(100);
    // One long-running user thread per core.
    for (int i = 0; i < 4; ++i) {
        os->spawn("spinner", i, [&]() -> Task<> {
            co_await os->cpu(1000000);
        });
    }
    // Wake the kernel thread while all cores are busy.
    eq.schedule(5000, [&] { wq.notifyOne(); });
    eq.drain();
    // Preemption means it completes in ~wake + ctx + 500 cycles, far
    // before the million-cycle spinners finish.
    EXPECT_GT(kernel_done, 5000u);
    EXPECT_LT(kernel_done, 20000u);
}

TEST_F(OsFixture, NestedTasksPropagateThreadAndReturnValues)
{
    boot();
    int result = 0;
    auto sub = [](SimOS &os, int x) -> Task<int> {
        co_await os.cpu(100);
        co_return x * 2;
    };
    os->spawn("parent", -1, [&, sub]() -> Task<> {
        int v = co_await sub(*os, 21);
        result = v;
    });
    eq.drain();
    EXPECT_EQ(result, 42);
    EXPECT_EQ(os->busyCycles(), 100u);
}

TEST_F(OsFixture, YieldRotatesEqualPriorityThreads)
{
    boot();
    std::vector<int> order;
    for (int i = 0; i < 2; ++i) {
        os->spawn("y", 0, [&, i]() -> Task<> {
            for (int k = 0; k < 3; ++k) {
                order.push_back(i);
                co_await os->cpu(10);
                co_await os->yieldNow();
            }
        });
    }
    eq.drain();
    ASSERT_EQ(order.size(), 6u);
    // The two threads alternate.
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 0);
}

TEST_F(OsFixture, YieldMigratesToIdleCoreWhenContended)
{
    // Regression: yielding threads used to re-queue on their own core
    // forever, leaving other cores idle (the Fig. 7 softirq pile-up).
    boot();
    std::vector<Cycles> done(2);
    // Two CPU-bound threads that both start on core 0 (one pinned
    // there, one unpinned whose wake lands there), yielding regularly.
    os->spawn("stay", 0, [&]() -> Task<> {
        for (int i = 0; i < 20; ++i) {
            co_await os->cpu(1000);
            co_await os->yieldNow();
        }
        done[0] = eq.now();
    });
    // Unpinned; round-robin initial placement also lands on core 0.
    os->spawn("move", -1, [&]() -> Task<> {
        for (int i = 0; i < 20; ++i) {
            co_await os->cpu(1000);
            co_await os->yieldNow();
        }
        done[1] = eq.now();
    });
    eq.drain();
    // With migration-on-yield the second thread escapes to an idle
    // core and both finish in ~20k cycles; trapped together they would
    // take ~40k+.
    EXPECT_LT(std::max(done[0], done[1]), 30000u);
}

TEST_F(OsFixture, KernelThreadsSpreadAcrossIdleCores)
{
    boot();
    std::vector<int> first_core(2, -1);
    WaitQueue go;
    for (int i = 0; i < 2; ++i) {
        SimThread *t = os->spawnKernel("kt", [&, i]() -> Task<> {
            co_await os->waitOn(go);
            first_core[i] = 0; // placeholder; read below via busy time
            co_await os->cpu(50000);
        });
        (void)t;
    }
    eq.runUntil(100);
    go.notifyAll();
    eq.drain();
    // Both ran 50k cycles; if they spread over two cores the busy sum
    // is 100k accumulated across a ~50k-cycle wall window.
    EXPECT_GE(os->busyCycles(), 100000u);
    EXPECT_LT(eq.now(), 95000u); // parallel, not serialized
}

TEST_F(OsFixture, SyscallChargesConfiguredCost)
{
    boot();
    os->spawn("sys", -1, [&]() -> Task<> {
        co_await os->syscall();
    });
    eq.drain();
    EXPECT_EQ(os->busyCycles(), cfg.syscallCycles);
}

TEST_F(OsFixture, CpuAccountingPerThread)
{
    boot();
    SimThread *t = os->spawn("acct", -1, [&]() -> Task<> {
        co_await os->cpu(777);
    });
    eq.drain();
    EXPECT_EQ(t->cpuConsumed(), 777u);
    EXPECT_EQ(t->state(), SimThread::State::Done);
}

TEST_F(OsFixture, SpawnPinValidation)
{
    boot();
    EXPECT_EXIT(os->spawn("bad", 7, []() -> Task<> { co_return; }),
                ::testing::ExitedWithCode(1), "pinned");
}

} // namespace
} // namespace firesim
