#include <gtest/gtest.h>

#include "pfa/pager.hh"
#include "pfa/remote_memory.hh"
#include "pfa/workloads.hh"

namespace firesim
{
namespace
{

/** Two nodes: compute node + memory blade, jumbo-frame network. */
struct PfaFixture : public ::testing::Test
{
    void
    boot()
    {
        ClusterConfig cc;
        cc.net.mtu = 4400;
        cc.net.ringBufBytes = 8192;
        cluster = std::make_unique<Cluster>(topologies::singleTor(2), cc);
        launchMemoryBlade(cluster->node(1), MemBladeConfig{}, &blade_stats);
    }

    std::unique_ptr<RemotePager>
    makePager(PagingMode mode, uint64_t local_frames)
    {
        PagerConfig pc;
        pc.mode = mode;
        pc.localFrames = local_frames;
        pc.memBladeIp = Cluster::ipFor(1);
        auto pager = std::make_unique<RemotePager>(cluster->node(0), pc);
        pager->start();
        return pager;
    }

    std::unique_ptr<Cluster> cluster;
    MemBladeStats blade_stats;
};

TEST_F(PfaFixture, LocalHitsAreFree)
{
    boot();
    auto pager = makePager(PagingMode::Software, 64);
    bool done = false;
    cluster->node(0).os().spawn("t", -1, [&]() -> Task<> {
        co_await pager->touch(5, false); // fault
        Cycles before = cluster->node(0).os().now();
        co_await pager->touch(5, false); // hit
        EXPECT_EQ(cluster->node(0).os().now(), before);
        done = true;
    });
    cluster->runUs(2000.0);
    ASSERT_TRUE(done);
    EXPECT_EQ(pager->stats().faults, 1u);
    EXPECT_EQ(pager->stats().localHits, 1u);
}

TEST_F(PfaFixture, FaultFetchesFromMemoryBlade)
{
    boot();
    auto pager = makePager(PagingMode::Software, 64);
    bool done = false;
    cluster->node(0).os().spawn("t", -1, [&]() -> Task<> {
        for (uint64_t p = 0; p < 10; ++p)
            co_await pager->touch(p, false);
        done = true;
    });
    cluster->runUs(5000.0);
    ASSERT_TRUE(done);
    EXPECT_EQ(pager->stats().faults, 10u);
    EXPECT_EQ(blade_stats.pageReads, 10u);
    EXPECT_EQ(pager->residentPages(), 10u);
}

TEST_F(PfaFixture, EvictionKeepsResidencyBounded)
{
    boot();
    auto pager = makePager(PagingMode::Software, 8);
    bool done = false;
    cluster->node(0).os().spawn("t", -1, [&]() -> Task<> {
        for (uint64_t p = 0; p < 20; ++p)
            co_await pager->touch(p, true);
        done = true;
    });
    cluster->runUs(10000.0);
    ASSERT_TRUE(done);
    EXPECT_LE(pager->residentPages(), 8u);
    EXPECT_EQ(pager->stats().evictions, 12u);
    // All evicted pages were dirty -> written back.
    EXPECT_EQ(pager->stats().dirtyWritebacks, 12u);
}

TEST_F(PfaFixture, PfaFaultStallIsLowerThanSoftware)
{
    boot();
    auto sw = makePager(PagingMode::Software, 64);
    PagerConfig pfa_cfg;
    pfa_cfg.mode = PagingMode::Pfa;
    pfa_cfg.localFrames = 64;
    pfa_cfg.memBladeIp = Cluster::ipFor(1);
    pfa_cfg.localPort = 9301;
    auto pfa = std::make_unique<RemotePager>(cluster->node(0), pfa_cfg);
    pfa->start();

    bool done = false;
    cluster->node(0).os().spawn("t", -1, [&]() -> Task<> {
        for (uint64_t p = 0; p < 20; ++p)
            co_await sw->touch(p, false);
        for (uint64_t p = 0; p < 20; ++p)
            co_await pfa->touch(1000 + p, false);
        done = true;
    });
    cluster->runUs(20000.0);
    ASSERT_TRUE(done);
    ASSERT_EQ(sw->stats().faults, 20u);
    ASSERT_EQ(pfa->stats().faults, 20u);
    double sw_stall = static_cast<double>(sw->stats().faultStallCycles);
    double pfa_stall = static_cast<double>(pfa->stats().faultStallCycles);
    EXPECT_LT(pfa_stall, sw_stall);
    // Meaningfully lower, not marginally: the HW path removes the
    // trap/handler/metadata work from the critical path.
    EXPECT_LT(pfa_stall, 0.8 * sw_stall);
}

TEST_F(PfaFixture, PfaBatchingCutsMetadataTime)
{
    // The paper reports ~2.5x lower metadata-management time with the
    // same number of evicted pages.
    boot();
    PfaWorkloadConfig wc;
    wc.pages = 256;
    wc.iterations = 1500;
    wc.computeCycles = 1600;

    PagerStats sw_stats, pfa_stats;
    for (PagingMode mode : {PagingMode::Software, PagingMode::Pfa}) {
        PagerConfig pc;
        pc.mode = mode;
        pc.localFrames = 128;
        pc.memBladeIp = Cluster::ipFor(1);
        pc.localPort = mode == PagingMode::Pfa ? 9311 : 9310;
        RemotePager pager(cluster->node(0), pc);
        pager.start();
        PfaWorkloadResult result;
        launchGenome(cluster->node(0), pager, wc, &result);
        for (int i = 0; i < 600 && !result.done; ++i)
            cluster->runUs(1000.0);
        ASSERT_TRUE(result.done);
        if (mode == PagingMode::Software)
            sw_stats = pager.stats();
        else
            pfa_stats = pager.stats();
    }
    ASSERT_GT(sw_stats.faults, 100u);
    // Comparable fault/eviction counts (same workload, same budget).
    EXPECT_NEAR(static_cast<double>(pfa_stats.faults),
                static_cast<double>(sw_stats.faults),
                0.2 * static_cast<double>(sw_stats.faults));
    double per_page_sw = static_cast<double>(sw_stats.metadataCycles) /
                         static_cast<double>(sw_stats.faults);
    double per_page_pfa = static_cast<double>(pfa_stats.metadataCycles) /
                          static_cast<double>(pfa_stats.faults);
    EXPECT_NEAR(per_page_sw / per_page_pfa, 2.3, 0.7);
}

TEST_F(PfaFixture, GenomeThrashesQsortTolerates)
{
    // Qsort's locality keeps its fault count far below genome's at the
    // same local-memory fraction.
    boot();
    PfaWorkloadConfig wc;
    wc.pages = 512;
    wc.iterations = 2000;
    wc.computeCycles = 800;
    wc.qsortCutoffPages = 16;

    uint64_t genome_faults = 0, qsort_faults = 0;
    uint64_t genome_accesses = 0, qsort_accesses = 0;
    int port = 9320;
    for (bool genome : {true, false}) {
        PagerConfig pc;
        pc.mode = PagingMode::Software;
        pc.localFrames = 256; // 50% of the working set
        pc.memBladeIp = Cluster::ipFor(1);
        pc.localPort = static_cast<uint16_t>(port++);
        RemotePager pager(cluster->node(0), pc);
        pager.start();
        PfaWorkloadResult result;
        if (genome)
            launchGenome(cluster->node(0), pager, wc, &result);
        else
            launchQsort(cluster->node(0), pager, wc, &result);
        for (int i = 0; i < 1200 && !result.done; ++i)
            cluster->runUs(1000.0);
        ASSERT_TRUE(result.done);
        if (genome) {
            genome_faults = pager.stats().faults;
            genome_accesses = result.accesses;
        } else {
            qsort_faults = pager.stats().faults;
            qsort_accesses = result.accesses;
        }
    }
    double genome_rate = static_cast<double>(genome_faults) /
                         static_cast<double>(genome_accesses);
    double qsort_rate = static_cast<double>(qsort_faults) /
                        static_cast<double>(qsort_accesses);
    // Genome misses at ~(1 - local fraction) for every access; qsort
    // faults are mostly compulsory (top partition levels) and the
    // recursion re-uses what is resident, so its steady-state rate is
    // clearly lower.
    EXPECT_GT(genome_rate, 1.5 * qsort_rate);
}

TEST(PagerDeath, ZeroFramesRejected)
{
    ClusterConfig cc;
    cc.net.mtu = 4400;
    cc.net.ringBufBytes = 8192;
    Cluster cluster(topologies::singleTor(2), cc);
    PagerConfig pc;
    pc.localFrames = 0;
    EXPECT_EXIT(RemotePager(cluster.node(0), pc),
                ::testing::ExitedWithCode(1), "local frame");
}

} // namespace
} // namespace firesim
