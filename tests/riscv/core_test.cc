#include <gtest/gtest.h>

#include <memory>

#include "riscv/assembler.hh"
#include "riscv/core.hh"

namespace firesim
{
namespace
{

using namespace regs;

/** A bare blade: memory + hierarchy + core + standard devices. */
struct CoreFixture : public ::testing::Test
{
    CoreFixture()
        : mem(64 * MiB), hier(1)
    {
        core = std::make_unique<RocketCore>(CoreConfig{}, mem, hier, &bus);
        mapStandardDevices(bus, *core);
    }

    Assembler
    prog()
    {
        return Assembler(mem, memmap::kDramBase);
    }

    FunctionalMemory mem;
    MemHierarchy hier;
    MmioBus bus;
    std::unique_ptr<RocketCore> core;
};

TEST_F(CoreFixture, AluArithmetic)
{
    Assembler a = prog();
    a.li(a0, 40);
    a.li(a1, 2);
    a.add(a2, a0, a1);  // 42
    a.sub(a3, a0, a1);  // 38
    a.xor_(a4, a0, a1); // 42
    a.and_(a5, a0, a1); // 0
    a.or_(a6, a0, a1);  // 42
    a.halt(a2);
    a.finalize();
    auto r = core->run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitCode, 42u);
    EXPECT_EQ(core->reg(a3), 38u);
    EXPECT_EQ(core->reg(a4), 42u);
    EXPECT_EQ(core->reg(a5), 0u);
    EXPECT_EQ(core->reg(a6), 42u);
}

TEST_F(CoreFixture, LiMaterializesArbitraryConstants)
{
    const int64_t values[] = {0,
                              1,
                              -1,
                              2047,
                              -2048,
                              2048,
                              0x7fffffff,
                              static_cast<int64_t>(0xffffffff80000000ULL),
                              0x123456789abcdef0LL,
                              INT64_MIN,
                              INT64_MAX};
    int idx = 10;
    Assembler a = prog();
    for (int64_t v : values)
        a.li(static_cast<Reg>(idx++), v);
    a.li(t0, 0);
    a.halt(t0);
    a.finalize();
    core->run();
    idx = 10;
    for (int64_t v : values)
        EXPECT_EQ(core->reg(static_cast<Reg>(idx++)),
                  static_cast<uint64_t>(v))
            << v;
}

TEST_F(CoreFixture, ShiftsAndComparisons)
{
    Assembler a = prog();
    a.li(a0, -8);
    a.srai(a1, a0, 1); // -4
    a.srli(a2, a0, 60); // 15
    a.li(a3, 3);
    a.sll(a4, a3, a3); // 24
    a.slt(a5, a0, a3); // -8 < 3 -> 1
    a.sltu(a6, a0, a3); // huge unsigned < 3 -> 0
    a.sltiu(a7, a3, 5); // 1
    a.halt(zero);
    a.finalize();
    core->run();
    EXPECT_EQ(static_cast<int64_t>(core->reg(a1)), -4);
    EXPECT_EQ(core->reg(a2), 15u);
    EXPECT_EQ(core->reg(a4), 24u);
    EXPECT_EQ(core->reg(a5), 1u);
    EXPECT_EQ(core->reg(a6), 0u);
    EXPECT_EQ(core->reg(a7), 1u);
}

TEST_F(CoreFixture, WordOpsSignExtend)
{
    Assembler a = prog();
    a.li(a0, 0x7fffffff);
    a.addiw(a1, a0, 1); // 0x80000000 -> sext = 0xffffffff80000000
    a.li(a2, 1);
    a.addw(a3, a0, a2); // same
    a.subw(a4, a3, a2); // back to 0x7fffffff
    a.slliw(a5, a2, 31); // 0xffffffff80000000
    a.halt(zero);
    a.finalize();
    core->run();
    EXPECT_EQ(core->reg(a1), 0xffffffff80000000ULL);
    EXPECT_EQ(core->reg(a3), 0xffffffff80000000ULL);
    EXPECT_EQ(core->reg(a4), 0x7fffffffULL);
    EXPECT_EQ(core->reg(a5), 0xffffffff80000000ULL);
}

TEST_F(CoreFixture, LoadStoreAllWidths)
{
    Assembler a = prog();
    a.li(s0, static_cast<int64_t>(memmap::kDramBase + 0x100000));
    a.li(t0, 0x1122334455667788LL);
    a.sd(t0, s0, 0);
    a.lb(a0, s0, 0);  // 0x88 sext -> -120
    a.lbu(a1, s0, 0); // 0x88
    a.lh(a2, s0, 0);  // 0x7788
    a.lhu(a3, s0, 6); // 0x1122
    a.lw(a4, s0, 4);  // 0x11223344
    a.lwu(a5, s0, 0); // 0x55667788
    a.ld(a6, s0, 0);
    a.sb(t0, s0, 8);
    a.lbu(a7, s0, 8); // 0x88
    a.halt(zero);
    a.finalize();
    core->run();
    EXPECT_EQ(static_cast<int64_t>(core->reg(a0)), -120);
    EXPECT_EQ(core->reg(a1), 0x88u);
    EXPECT_EQ(core->reg(a2), 0x7788u);
    EXPECT_EQ(core->reg(a3), 0x1122u);
    EXPECT_EQ(core->reg(a4), 0x11223344u);
    EXPECT_EQ(core->reg(a5), 0x55667788u);
    EXPECT_EQ(core->reg(a6), 0x1122334455667788ULL);
    EXPECT_EQ(core->reg(a7), 0x88u);
}

TEST_F(CoreFixture, BranchesAndLoops)
{
    // sum = 1 + 2 + ... + 100 = 5050
    Assembler a = prog();
    a.li(a0, 0);   // sum
    a.li(t0, 1);   // i
    a.li(t1, 100); // limit
    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    a.add(a0, a0, t0);
    a.addi(t0, t0, 1);
    a.bge(t1, t0, loop);
    a.halt(a0);
    a.finalize();
    auto r = core->run();
    EXPECT_EQ(r.exitCode, 5050u);
    EXPECT_EQ(core->stats().takenBranches, 99u);
}

TEST_F(CoreFixture, FunctionCallAndReturn)
{
    // double(x): x*2, called three times via jal/ret.
    Assembler a = prog();
    Assembler::Label fn = a.newLabel();
    Assembler::Label start = a.newLabel();
    a.j(start);
    a.bind(fn);
    a.add(a0, a0, a0);
    a.ret();
    a.bind(start);
    a.li(a0, 5);
    a.jal(ra, fn);
    a.jal(ra, fn);
    a.jal(ra, fn);
    a.halt(a0); // 40
    a.finalize();
    EXPECT_EQ(core->run().exitCode, 40u);
}

TEST_F(CoreFixture, MulDivSemantics)
{
    Assembler a = prog();
    a.li(a0, -7);
    a.li(a1, 3);
    a.mul(a2, a0, a1);  // -21
    a.div(a3, a0, a1);  // -2 (toward zero)
    a.rem(a4, a0, a1);  // -1
    a.li(t0, 0);
    a.div(a5, a0, t0);  // div by zero -> all ones
    a.rem(a6, a0, t0);  // rem by zero -> dividend
    a.li(t1, INT64_MIN);
    a.li(t2, -1);
    a.div(a7, t1, t2);  // overflow -> INT64_MIN
    a.halt(zero);
    a.finalize();
    core->run();
    EXPECT_EQ(static_cast<int64_t>(core->reg(a2)), -21);
    EXPECT_EQ(static_cast<int64_t>(core->reg(a3)), -2);
    EXPECT_EQ(static_cast<int64_t>(core->reg(a4)), -1);
    EXPECT_EQ(core->reg(a5), ~0ULL);
    EXPECT_EQ(static_cast<int64_t>(core->reg(a6)), -7);
    EXPECT_EQ(core->reg(a7), static_cast<uint64_t>(INT64_MIN));
}

TEST_F(CoreFixture, MulhVariants)
{
    Assembler a = prog();
    a.li(a0, -1);
    a.li(a1, -1);
    a.mulh(a2, a0, a1);   // (-1 * -1) >> 64 = 0
    a.mulhu(a3, a0, a1);  // (2^64-1)^2 >> 64 = 2^64 - 2
    a.mulhsu(a4, a0, a1); // -1 * (2^64-1) >> 64 = -1
    a.halt(zero);
    a.finalize();
    core->run();
    EXPECT_EQ(core->reg(a2), 0u);
    EXPECT_EQ(core->reg(a3), ~1ULL);
    EXPECT_EQ(core->reg(a4), ~0ULL);
}

TEST_F(CoreFixture, X0IsHardwiredZero)
{
    Assembler a = prog();
    a.li(t0, 99);
    a.add(zero, t0, t0);
    a.mv(a0, zero);
    a.halt(a0);
    a.finalize();
    EXPECT_EQ(core->run().exitCode, 0u);
}

TEST_F(CoreFixture, UartPrintsHello)
{
    Assembler a = prog();
    a.li(t1, static_cast<int64_t>(memmap::kUartTx));
    for (char c : std::string("hello")) {
        a.li(t0, c);
        a.sb(t0, t1, 0);
    }
    a.halt(zero);
    a.finalize();
    core->run();
    EXPECT_EQ(core->console(), "hello");
}

TEST_F(CoreFixture, EcallHaltsWithA0)
{
    Assembler a = prog();
    a.li(a0, 17);
    a.ecall();
    a.finalize();
    EXPECT_EQ(core->run().exitCode, 17u);
}

TEST_F(CoreFixture, TightLoopRunsNearCpiOne)
{
    // A long dependent ALU chain in a hot I$ line: CPI approaches 1
    // (plus the taken-branch penalty of the loop back-edge).
    Assembler a = prog();
    a.li(t0, 10000);
    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    for (int i = 0; i < 14; ++i)
        a.addi(a0, a0, 1);
    a.addi(t0, t0, -1);
    a.bne(t0, zero, loop);
    a.halt(a0);
    a.finalize();
    auto r = core->run();
    double cpi = static_cast<double>(r.cycles) / r.instret;
    EXPECT_GT(cpi, 1.0);
    EXPECT_LT(cpi, 1.35);
}

TEST_F(CoreFixture, CacheMissesShowUpInTiming)
{
    // Stride through 1 MiB (beyond L2): each load pays DRAM latency.
    Assembler a = prog();
    a.li(s0, static_cast<int64_t>(memmap::kDramBase + 0x100000));
    a.li(t0, 4096); // iterations
    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    a.ld(a1, s0, 0);
    a.addi(s0, s0, 256); // skip lines, defeat spatial locality
    a.addi(t0, t0, -1);
    a.bne(t0, zero, loop);
    a.halt(zero);
    a.finalize();
    auto r = core->run();
    double cpi = static_cast<double>(r.cycles) / r.instret;
    EXPECT_GT(cpi, 10.0); // heavily memory bound
    EXPECT_GT(hier.dram().stats().reads.value(), 4000u);
}

TEST_F(CoreFixture, InstructionTimingBreakdown)
{
    Assembler a = prog();
    a.li(a0, 6);
    a.li(a1, 7);
    a.mul(a2, a0, a1);
    a.halt(a2);
    a.finalize();
    auto r = core->run();
    EXPECT_EQ(r.exitCode, 42u);
    // mul costs mulLatency (4) instead of 1.
    EXPECT_GE(r.cycles, r.instret + 3);
}

TEST_F(CoreFixture, RunRespectsInstructionBudget)
{
    Assembler a = prog();
    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    a.addi(a0, a0, 1);
    a.j(loop);
    a.finalize();
    auto r = core->run(1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instret, 1000u);
}

TEST(MmioBusTest, OverlapRejected)
{
    MmioBus bus;
    bus.map(0x1000, 0x100, nullptr, [](uint64_t, uint64_t, uint32_t) {},
            "a");
    EXPECT_EXIT(bus.map(0x10ff, 0x10, nullptr,
                        [](uint64_t, uint64_t, uint32_t) {}, "b"),
                ::testing::ExitedWithCode(1), "overlaps");
}

TEST(MmioBusTest, UnmappedAccessPanics)
{
    MmioBus bus;
    EXPECT_DEATH(bus.read(0xdead, 8), "unmapped");
}

namespace
{
/** Map [base, base+0x100) returning a fixed value on any read. */
void
mapConst(MmioBus &bus, uint64_t base, uint64_t value)
{
    bus.map(
        base, 0x100,
        [value](uint64_t, uint32_t) { return value; },
        [](uint64_t, uint64_t, uint32_t) {}, "const");
}
} // namespace

TEST(MmioBusTest, OutOfOrderMappingDispatchesCorrectly)
{
    // Regions arrive unsorted; find() binary-searches the sorted list,
    // so every region must resolve regardless of insertion order.
    MmioBus bus;
    mapConst(bus, 0x3000, 3);
    mapConst(bus, 0x1000, 1);
    mapConst(bus, 0x4000, 4);
    mapConst(bus, 0x2000, 2);

    EXPECT_EQ(bus.read(0x1000, 8), 1u);
    EXPECT_EQ(bus.read(0x20ff, 1), 2u);
    EXPECT_EQ(bus.read(0x3080, 4), 3u);
    EXPECT_EQ(bus.read(0x4000, 8), 4u);

    EXPECT_TRUE(bus.contains(0x1000));
    EXPECT_TRUE(bus.contains(0x10ff));
    EXPECT_FALSE(bus.contains(0x0fff));
    EXPECT_FALSE(bus.contains(0x1100));
    EXPECT_FALSE(bus.contains(0x2100));
    EXPECT_FALSE(bus.contains(0x4100));
}

TEST(MmioBusTest, LastHitCacheSurvivesAlternatingAccess)
{
    // Device-polling loops hammer one window; the last-hit cache must
    // serve repeats without misrouting accesses to OTHER regions or
    // swallowing unmapped addresses between regions.
    MmioBus bus;
    mapConst(bus, 0x2000, 2);
    mapConst(bus, 0x1000, 1);

    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(bus.read(0x1000, 8), 1u); // repeat: cached index
        EXPECT_EQ(bus.read(0x1008, 8), 1u);
        EXPECT_EQ(bus.read(0x2000, 8), 2u); // switch regions
        EXPECT_FALSE(bus.contains(0x1800)); // gap between the two
    }

    // Mapping after lookups (insert may reallocate/shift the sorted
    // vector) must not leave a stale cached index behind.
    mapConst(bus, 0x0000, 7);
    EXPECT_EQ(bus.read(0x0000, 8), 7u);
    EXPECT_EQ(bus.read(0x1000, 8), 1u);
    EXPECT_EQ(bus.read(0x2000, 8), 2u);
}

TEST(MmioBusTest, OverlapRejectedAnyInsertionOrder)
{
    // A new region overlapping an EARLIER base must also be caught —
    // the check has to consider both sorted neighbors.
    MmioBus bus;
    mapConst(bus, 0x2000, 2);
    EXPECT_EXIT(mapConst(bus, 0x1f80, 1), ::testing::ExitedWithCode(1),
                "overlaps");
}

TEST(MmioBusTest, OverlapRejectedEnclosingRegion)
{
    MmioBus bus;
    mapConst(bus, 0x2000, 2);
    EXPECT_EXIT(bus.map(0x1000, 0x4000,
                        [](uint64_t, uint32_t) { return uint64_t(0); },
                        [](uint64_t, uint64_t, uint32_t) {}, "big"),
                ::testing::ExitedWithCode(1), "overlaps");
}

} // namespace
} // namespace firesim
