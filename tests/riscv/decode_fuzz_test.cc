/**
 * @file
 * Differential fuzzing of the decode-cache fast path (riscv/decode_cache)
 * against the interpretive slow path.
 *
 * Every test runs the same randomly generated RV64IM program on two
 * cores — decode cache on and off — and demands *bit-identical*
 * architectural state, CoreStats, console output, and committed
 * instruction trace. One test snapshots mid-run and cross-restores
 * between the two modes (the decode cache is host-only state and never
 * serialized), another rewrites an already-executed instruction to pin
 * down the self-modifying-code invalidation path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "riscv/assembler.hh"
#include "riscv/core.hh"
#include "riscv/decode_cache.hh"
#include "snapshot/serial.hh"

namespace firesim
{
namespace
{

using namespace regs;

/** One core with its own memory/hierarchy/bus/tracer. */
struct Rig
{
    explicit Rig(bool decode_cache, uint32_t entries = 1u << 15)
        : mem(64 * MiB), hier(1), trace(1 << 18)
    {
        CoreConfig cc;
        cc.decodeCache = decode_cache;
        cc.decodeCacheEntries = entries;
        core = std::make_unique<RocketCore>(cc, mem, hier, &bus);
        mapStandardDevices(bus, *core);
        core->setTracer(&trace);
    }

    Assembler asmAt() { return Assembler(mem, memmap::kDramBase); }

    FunctionalMemory mem;
    MemHierarchy hier;
    MmioBus bus;
    InstructionTrace trace;
    std::unique_ptr<RocketCore> core;
};

/** Emit the same pseudo-random program into @p a for a given seed:
 *  a bounded outer loop over a body of random ALU/shift/word/muldiv/
 *  load/store ops plus short forward branches. */
void
emitFuzzProgram(Assembler &a, uint64_t seed, int body_ops)
{
    std::mt19937_64 rng(seed);
    // s0 = scratch data base, t5 = loop counter; the generator hands
    // out the remaining temporaries/arguments as operands.
    const Reg pool[] = {a0, a1, a2, a3, a4, a5, a6, a7,
                        t0, t1, t2, t3, t4, s1};
    auto reg = [&] { return pool[rng() % (sizeof(pool) / sizeof(pool[0]))]; };
    auto imm12 = [&] {
        return static_cast<int32_t>(rng() % 4096) - 2048;
    };

    a.li(s0, static_cast<int64_t>(memmap::kDramBase + 8 * MiB));
    a.li(t5, 37); // outer loop iterations
    for (size_t i = 0; i < sizeof(pool) / sizeof(pool[0]); ++i)
        a.li(pool[i], static_cast<int64_t>(rng()));

    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    for (int i = 0; i < body_ops; ++i) {
        switch (rng() % 8) {
          case 0: { // OP-IMM
            Reg rd = reg(), rs = reg();
            switch (rng() % 6) {
              case 0: a.addi(rd, rs, imm12()); break;
              case 1: a.xori(rd, rs, imm12()); break;
              case 2: a.andi(rd, rs, imm12()); break;
              case 3: a.ori(rd, rs, imm12()); break;
              case 4: a.slti(rd, rs, imm12()); break;
              case 5: a.sltiu(rd, rs, imm12()); break;
            }
            break;
          }
          case 1: { // shifts, immediate and register
            Reg rd = reg(), rs = reg();
            uint32_t sh = rng() % 64;
            switch (rng() % 6) {
              case 0: a.slli(rd, rs, sh); break;
              case 1: a.srli(rd, rs, sh); break;
              case 2: a.srai(rd, rs, sh); break;
              case 3: a.sll(rd, rs, reg()); break;
              case 4: a.srl(rd, rs, reg()); break;
              case 5: a.sra(rd, rs, reg()); break;
            }
            break;
          }
          case 2: { // OP
            Reg rd = reg(), rs1_ = reg(), rs2_ = reg();
            switch (rng() % 7) {
              case 0: a.add(rd, rs1_, rs2_); break;
              case 1: a.sub(rd, rs1_, rs2_); break;
              case 2: a.xor_(rd, rs1_, rs2_); break;
              case 3: a.or_(rd, rs1_, rs2_); break;
              case 4: a.and_(rd, rs1_, rs2_); break;
              case 5: a.slt(rd, rs1_, rs2_); break;
              case 6: a.sltu(rd, rs1_, rs2_); break;
            }
            break;
          }
          case 3: { // word ops
            Reg rd = reg(), rs = reg();
            uint32_t sh = rng() % 32;
            switch (rng() % 7) {
              case 0: a.addiw(rd, rs, imm12()); break;
              case 1: a.slliw(rd, rs, sh); break;
              case 2: a.srliw(rd, rs, sh); break;
              case 3: a.sraiw(rd, rs, sh); break;
              case 4: a.addw(rd, rs, reg()); break;
              case 5: a.subw(rd, rs, reg()); break;
              case 6: a.sllw(rd, rs, reg()); break;
            }
            break;
          }
          case 4: { // mul/div, including the b==0 / overflow edges
            Reg rd = reg(), rs1_ = reg(), rs2_ = reg();
            switch (rng() % 10) {
              case 0: a.mul(rd, rs1_, rs2_); break;
              case 1: a.mulh(rd, rs1_, rs2_); break;
              case 2: a.mulhsu(rd, rs1_, rs2_); break;
              case 3: a.mulhu(rd, rs1_, rs2_); break;
              case 4: a.div(rd, rs1_, rs2_); break;
              case 5: a.divu(rd, rs1_, rs2_); break;
              case 6: a.rem(rd, rs1_, rs2_); break;
              case 7: a.remu(rd, rs1_, rs2_); break;
              case 8: a.mulw(rd, rs1_, rs2_); break;
              case 9: a.divw(rd, rs1_, rs2_); break;
            }
            break;
          }
          case 5: { // store then load through the scratch region
            int32_t off = static_cast<int32_t>((rng() % 256) * 8);
            Reg v = reg(), rd = reg();
            switch (rng() % 4) {
              case 0: a.sd(v, s0, off); a.ld(rd, s0, off); break;
              case 1: a.sw(v, s0, off); a.lw(rd, s0, off); break;
              case 2: a.sh(v, s0, off); a.lhu(rd, s0, off); break;
              case 3: a.sb(v, s0, off); a.lb(rd, s0, off); break;
            }
            break;
          }
          case 6: { // short forward branch over one instruction
            Reg rs1_ = reg(), rs2_ = reg();
            Assembler::Label skip = a.newLabel();
            switch (rng() % 4) {
              case 0: a.beq(rs1_, rs2_, skip); break;
              case 1: a.bne(rs1_, rs2_, skip); break;
              case 2: a.blt(rs1_, rs2_, skip); break;
              case 3: a.bgeu(rs1_, rs2_, skip); break;
            }
            a.addi(reg(), reg(), imm12());
            a.bind(skip);
            break;
          }
          case 7: { // LUI/AUIPC
            Reg rd = reg();
            int32_t imm20 = static_cast<int32_t>(rng() % (1 << 20)) -
                            (1 << 19);
            if (rng() % 2)
                a.lui(rd, imm20);
            else
                a.auipc(rd, imm20);
            break;
          }
        }
    }
    a.addi(t5, t5, -1);
    a.bne(t5, zero, loop);
    a.halt(a0);
    a.finalize();
}

void
expectIdentical(Rig &on, Rig &off)
{
    EXPECT_EQ(on.core->halted(), off.core->halted());
    EXPECT_EQ(on.core->pc(), off.core->pc());
    EXPECT_EQ(on.core->exitCode(), off.core->exitCode());
    EXPECT_EQ(on.core->console(), off.core->console());
    for (int r = 0; r < 32; ++r)
        EXPECT_EQ(on.core->reg(static_cast<Reg>(r)),
                  off.core->reg(static_cast<Reg>(r)))
            << "x" << r;
    const CoreStats &s1 = on.core->stats();
    const CoreStats &s2 = off.core->stats();
    EXPECT_EQ(s1.instret, s2.instret);
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.loads, s2.loads);
    EXPECT_EQ(s1.stores, s2.stores);
    EXPECT_EQ(s1.branches, s2.branches);
    EXPECT_EQ(s1.takenBranches, s2.takenBranches);
    EXPECT_EQ(s1.mmioAccesses, s2.mmioAccesses);
    // Cache timing must agree too: the fast path's fetchAccess must
    // charge exactly what the slow path's hierarchy fetch does.
    EXPECT_EQ(on.hier.l1i(0).stats().hits.value(),
              off.hier.l1i(0).stats().hits.value());
    EXPECT_EQ(on.hier.l1i(0).stats().misses.value(),
              off.hier.l1i(0).stats().misses.value());
    EXPECT_EQ(on.trace.committed(), off.trace.committed());
    EXPECT_EQ(on.trace.drain(), off.trace.drain());
}

TEST(DecodeFuzz, RandomProgramsMatchSlowPathBitExactly)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rig on(true), off(false);
        {
            Assembler a = on.asmAt();
            emitFuzzProgram(a, seed, 120);
        }
        {
            Assembler a = off.asmAt();
            emitFuzzProgram(a, seed, 120);
        }
        on.core->run(2'000'000);
        off.core->run(2'000'000);
        EXPECT_TRUE(on.core->halted()) << "seed " << seed;
        expectIdentical(on, off);
        // The loop re-executes its body 37 times: the decode cache must
        // actually be getting hits, or this test measures nothing.
        ASSERT_NE(on.core->decodeStats(), nullptr);
        EXPECT_GT(on.core->decodeStats()->hits,
                  on.core->decodeStats()->misses);
        EXPECT_EQ(off.core->decodeStats(), nullptr);
    }
}

TEST(DecodeFuzz, TinyDirectMappedCacheStillExact)
{
    // 16 entries force constant conflict evictions; only wall-clock
    // may change, never results.
    Rig tiny(true, 16), off(false);
    {
        Assembler a = tiny.asmAt();
        emitFuzzProgram(a, 99, 200);
    }
    {
        Assembler a = off.asmAt();
        emitFuzzProgram(a, 99, 200);
    }
    tiny.core->run(2'000'000);
    off.core->run(2'000'000);
    EXPECT_TRUE(tiny.core->halted());
    expectIdentical(tiny, off);
    EXPECT_EQ(tiny.core->decodeStats()->misses +
                  tiny.core->decodeStats()->hits,
              tiny.core->stats().instret);
}

/** Save {mem, hier, core} in a fixed order. */
std::string
saveRig(const Rig &r)
{
    Serializer s;
    r.mem.snapshotSave(s);
    r.hier.snapshotSave(s);
    r.core->snapshotSave(s);
    return s.takeBytes();
}

void
restoreRig(Rig &r, const std::string &bytes)
{
    Deserializer d(bytes);
    SnapshotErrors err;
    r.mem.snapshotRestore(d, err);
    r.hier.snapshotRestore(d, err);
    r.core->snapshotRestore(d, err);
    ASSERT_TRUE(err.ok()) << err.str();
}

TEST(DecodeFuzz, SnapshotMidRunCrossRestoresBetweenModes)
{
    const uint64_t seed = 7;
    // Reference: cache-off straight through.
    Rig ref(false);
    {
        Assembler a = ref.asmAt();
        emitFuzzProgram(a, seed, 120);
    }
    ref.core->run(2'000'000);
    ASSERT_TRUE(ref.core->halted());

    // Run cache-on to an arbitrary mid-run boundary and snapshot.
    Rig on(true);
    {
        Assembler a = on.asmAt();
        emitFuzzProgram(a, seed, 120);
    }
    std::mt19937_64 rng(seed * 12345);
    uint64_t cut = 500 + rng() % 3000;
    on.core->run(cut);
    ASSERT_FALSE(on.core->halted());
    std::string snap = saveRig(on);

    // Restore into BOTH modes (the decode cache is host-only and not
    // in the stream) and continue each to completion.
    Rig cont_on(true), cont_off(false);
    restoreRig(cont_on, snap);
    restoreRig(cont_off, snap);
    cont_on.core->run(2'000'000);
    cont_off.core->run(2'000'000);
    EXPECT_TRUE(cont_on.core->halted());
    EXPECT_TRUE(cont_off.core->halted());

    for (int r = 0; r < 32; ++r) {
        EXPECT_EQ(cont_on.core->reg(static_cast<Reg>(r)),
                  ref.core->reg(static_cast<Reg>(r)));
        EXPECT_EQ(cont_off.core->reg(static_cast<Reg>(r)),
                  ref.core->reg(static_cast<Reg>(r)));
    }
    EXPECT_EQ(cont_on.core->stats().cycles, ref.core->stats().cycles);
    EXPECT_EQ(cont_off.core->stats().cycles, ref.core->stats().cycles);
    EXPECT_EQ(cont_on.core->stats().instret, ref.core->stats().instret);
    EXPECT_EQ(cont_off.core->stats().instret, ref.core->stats().instret);
    EXPECT_EQ(cont_on.core->exitCode(), ref.core->exitCode());
    EXPECT_EQ(cont_off.core->exitCode(), ref.core->exitCode());
    EXPECT_EQ(cont_on.core->console(), ref.core->console());
    EXPECT_EQ(cont_off.core->console(), ref.core->console());
}

TEST(DecodeFuzz, SelfModifyingCodeInvalidatesAndMatches)
{
    auto build = [](Rig &r) {
        Assembler a = r.asmAt();
        // addi a0, a0, 7
        const uint32_t new_insn =
            (7u << 20) | (10u << 15) | (0u << 12) | (10u << 7) | 0x13u;
        a.li(a0, 0);
        a.li(t2, 2);
        a.li(t0, static_cast<int64_t>(new_insn));
        // The rewritten instruction lives at a fixed address so t1 can
        // be loaded before the loop (li expands to a variable-length
        // sequence, so in-loop addresses are awkward to materialize).
        const uint64_t target = memmap::kDramBase + 0x2000;
        a.li(t1, static_cast<int64_t>(target));
        Assembler::Label loop = a.newLabel();
        a.bind(loop);
        a.jalr(ra, t1, 0); // call the target snippet
        a.sw(t0, t1, 0);   // rewrite its first instruction
        a.addi(t2, t2, -1);
        a.bne(t2, zero, loop);
        a.halt(a0);
        a.finalize();
        // The callable target snippet: addi a0, a0, 1 ; ret
        Assembler snip(r.mem, target);
        snip.addi(a0, a0, 1);
        snip.ret();
        snip.finalize();
    };

    Rig on(true), off(false);
    build(on);
    build(off);
    on.core->run(10'000);
    off.core->run(10'000);
    ASSERT_TRUE(on.core->halted());
    ASSERT_TRUE(off.core->halted());
    // Iteration 1 adds 1, the rewrite lands, iteration 2 adds 7.
    EXPECT_EQ(on.core->exitCode(), 8u);
    EXPECT_EQ(off.core->exitCode(), 8u);
    expectIdentical(on, off);
    // The store over cached code must have invalidated at least the
    // target's slot — a stale hit would have produced 2, not 8.
    ASSERT_NE(on.core->decodeStats(), nullptr);
    EXPECT_GE(on.core->decodeStats()->invalidations, 1u);
}

TEST(DecodeFuzz, MemoryRestoreDropsCachedDecodes)
{
    // Snapshot memory, run (populating the decode cache), restore the
    // memory image wholesale: every cached decode must be dropped.
    Rig on(true);
    {
        Assembler a = on.asmAt();
        a.li(t0, 3);
        Assembler::Label loop = a.newLabel();
        a.bind(loop);
        a.addi(a0, a0, 1);
        a.addi(t0, t0, -1);
        a.bne(t0, zero, loop);
        a.halt(a0);
        a.finalize();
    }
    Serializer s;
    on.mem.snapshotSave(s);
    std::string image = s.takeBytes();
    on.core->run(10'000);
    ASSERT_TRUE(on.core->halted());
    uint64_t cached = on.core->decodeStats()->misses -
                      on.core->decodeStats()->invalidations;
    ASSERT_GT(cached, 0u);
    Deserializer d(image);
    SnapshotErrors err;
    on.mem.snapshotRestore(d, err);
    ASSERT_TRUE(err.ok()) << err.str();
    EXPECT_GE(on.core->decodeStats()->invalidations, cached);
}

} // namespace
} // namespace firesim
