#include <gtest/gtest.h>

#include <memory>

#include "net/fabric.hh"
#include "node/server_blade.hh"
#include "riscv/assembler.hh"
#include "riscv/core.hh"
#include "riscv/nic_mmio.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

using namespace regs;

/** A blade whose RISC-V core drives the NIC through MMIO, with the
 *  blade on a token fabric against a scripted peer. */
struct MmioNicFixture : public ::testing::Test
{
    MmioNicFixture()
    {
        BladeConfig bc;
        bc.name = "dut";
        bc.memBytes = 64 * MiB;
        bc.mac = MacAddr(0xa);
        blade = std::make_unique<ServerBlade>(bc);
        peer = std::make_unique<ScriptedEndpoint>("peer");
        fabric.addEndpoint(blade.get());
        fabric.addEndpoint(peer.get());
        fabric.connect(blade.get(), 0, peer.get(), 0, 400);
        fabric.finalize();

        hier = std::make_unique<MemHierarchy>(1);
        core = std::make_unique<RocketCore>(CoreConfig{}, blade->memory(),
                                            *hier, &bus);
        mapStandardDevices(bus, *core);
        mapNicMmio(bus, blade->nic());
        mapBlockDevMmio(bus, blade->blockDevice());
        // Keep the blade's devices in step with the core's cycle: the
        // core leads, the event queue follows (single-node mode).
        bus.setSyncHook([this](Cycles now) {
            if (now > blade->eventQueue().now())
                blade->eventQueue().runUntil(now);
        });
    }

    /** Advance the fabric so tokens flow (core already ran). */
    void
    pumpFabric(Cycles cycles)
    {
        fabric.run(cycles);
    }

    TokenFabric fabric;
    std::unique_ptr<ServerBlade> blade;
    std::unique_ptr<ScriptedEndpoint> peer;
    std::unique_ptr<MemHierarchy> hier;
    MmioBus bus;
    std::unique_ptr<RocketCore> core;
};

TEST_F(MmioNicFixture, CoreReadsMacRegister)
{
    Assembler a(blade->memory(), memmap::kDramBase);
    a.li(t1, static_cast<int64_t>(memmap::kNicBase));
    a.ld(a0, t1, static_cast<int32_t>(nicreg::kMacAddr));
    a.halt(a0);
    a.finalize();
    auto r = core->run();
    EXPECT_EQ(r.exitCode, 0xaULL);
}

TEST_F(MmioNicFixture, CoreSendsPacketThroughNic)
{
    // Program: build a frame in memory at physical 0x10000, write the
    // packed send request, poll COUNTS until the completion arrives,
    // pop it, halt with the pop result.
    EthFrame frame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw,
                   std::vector<uint8_t>(32, 0x5a));
    blade->memory().write(0x10000, frame.bytes.data(), frame.size());

    Assembler a(blade->memory(), memmap::kDramBase);
    a.li(t1, static_cast<int64_t>(memmap::kNicBase));
    a.li(t0, (static_cast<int64_t>(frame.size()) << 48) | 0x10000);
    a.sd(t0, t1, static_cast<int32_t>(nicreg::kSendReq));
    Assembler::Label poll = a.newLabel();
    a.bind(poll);
    a.ld(a1, t1, static_cast<int32_t>(nicreg::kCounts));
    a.srli(a1, a1, 16); // send completions pending
    a.beq(a1, zero, poll);
    a.ld(a0, t1, static_cast<int32_t>(nicreg::kSendComp));
    a.halt(a0);
    a.finalize();

    auto r = core->run(200000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.exitCode, 1u); // completion popped

    // Now pump the fabric: the blade's event queue already emitted the
    // flits into the NIC outbox; run rounds so the peer receives them.
    pumpFabric(core->cycle() + 4000);
    ASSERT_EQ(peer->received.size(), 1u);
    EXPECT_EQ(peer->received[0].second.bytes, frame.bytes);
}

TEST_F(MmioNicFixture, CoreBlockDeviceRoundTrip)
{
    // Write a sector from memory to disk, read it back to a different
    // address, then compare 8 bytes.
    blade->memory().write64(0x20000, 0xfeedfacecafef00dULL);

    Assembler a(blade->memory(), memmap::kDramBase);
    a.li(t1, static_cast<int64_t>(memmap::kBlkBase));
    // Write request: mem 0x20000 -> sector 3.
    a.li(t0, 0x20000);
    a.sd(t0, t1, static_cast<int32_t>(blkreg::kMemAddr));
    a.li(t0, 3);
    a.sd(t0, t1, static_cast<int32_t>(blkreg::kSector));
    a.li(t0, 1);
    a.sd(t0, t1, static_cast<int32_t>(blkreg::kCount));
    a.sd(t0, t1, static_cast<int32_t>(blkreg::kWrite)); // 1 = write
    a.ld(s0, t1, static_cast<int32_t>(blkreg::kAlloc)); // tracker id
    // Poll for completion.
    Assembler::Label poll1 = a.newLabel();
    a.bind(poll1);
    a.ld(a1, t1, static_cast<int32_t>(blkreg::kComplete));
    a.li(t2, -1);
    a.beq(a1, t2, poll1);
    // Read request: sector 3 -> mem 0x30000.
    a.li(t0, 0x30000);
    a.sd(t0, t1, static_cast<int32_t>(blkreg::kMemAddr));
    a.li(t0, 0);
    a.sd(t0, t1, static_cast<int32_t>(blkreg::kWrite)); // 0 = read
    a.ld(s1, t1, static_cast<int32_t>(blkreg::kAlloc));
    Assembler::Label poll2 = a.newLabel();
    a.bind(poll2);
    a.ld(a1, t1, static_cast<int32_t>(blkreg::kComplete));
    a.beq(a1, t2, poll2);
    // Compare.
    a.li(s0, static_cast<int64_t>(memmap::kDramBase + 0x20000));
    a.li(s1, static_cast<int64_t>(memmap::kDramBase + 0x30000));
    a.ld(a2, s0, 0);
    a.ld(a3, s1, 0);
    a.sub(a0, a2, a3); // 0 when equal
    a.halt(a0);
    a.finalize();

    auto r = core->run(10000000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.exitCode, 0u);
    EXPECT_EQ(blade->blockDevice().stats().writes.value(), 1u);
    EXPECT_EQ(blade->blockDevice().stats().reads.value(), 1u);
}

} // namespace
} // namespace firesim
