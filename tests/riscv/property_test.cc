/**
 * @file
 * Property tests for the RV64IM core: pseudo-random instruction
 * sequences are generated through the assembler and executed on the
 * core; an independent C++ golden model (written directly against the
 * ISA manual's semantics, sharing no code with the interpreter's
 * decoder) predicts the architectural result. Seeds parameterize the
 * suite, so each case is a distinct random program.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/random.hh"
#include "riscv/assembler.hh"
#include "riscv/core.hh"

namespace firesim
{
namespace
{

using namespace regs;

/** Golden architectural state: registers only (x0 pinned to zero). */
struct Golden
{
    int64_t x[32] = {};

    void
    set(Reg r, int64_t v)
    {
        if (r != 0)
            x[r] = v;
    }
    int64_t get(Reg r) const { return x[r]; }
};

int32_t
sext32(int64_t v)
{
    return static_cast<int32_t>(v);
}

class RandomAluProgram : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomAluProgram, MatchesGoldenModel)
{
    Random rng(GetParam());
    FunctionalMemory mem(16 * MiB);
    MemHierarchy hier(1);
    MmioBus bus;
    RocketCore core(CoreConfig{}, mem, hier, &bus);
    mapStandardDevices(bus, core);
    Assembler a(mem, memmap::kDramBase);
    Golden gold;

    // Seed registers x5..x15 with random constants.
    for (Reg r = 5; r <= 15; ++r) {
        int64_t v = static_cast<int64_t>(rng.next());
        a.li(r, v);
        gold.set(r, v);
    }

    // 300 random register-register / register-immediate ops over
    // x5..x15 (no branches: straight-line equivalence).
    for (int i = 0; i < 300; ++i) {
        Reg rd = static_cast<Reg>(5 + rng.below(11));
        Reg rs1 = static_cast<Reg>(5 + rng.below(11));
        Reg rs2 = static_cast<Reg>(5 + rng.below(11));
        int64_t va = gold.get(rs1);
        int64_t vb = gold.get(rs2);
        uint64_t ua = static_cast<uint64_t>(va);
        uint64_t ub = static_cast<uint64_t>(vb);
        int32_t imm = static_cast<int32_t>(rng.range(0, 4095)) - 2048;
        uint32_t sh6 = static_cast<uint32_t>(rng.below(64));
        uint32_t sh5 = static_cast<uint32_t>(rng.below(32));

        switch (rng.below(24)) {
          case 0:
            a.add(rd, rs1, rs2);
            gold.set(rd, static_cast<int64_t>(ua + ub));
            break;
          case 1:
            a.sub(rd, rs1, rs2);
            gold.set(rd, static_cast<int64_t>(ua - ub));
            break;
          case 2:
            a.and_(rd, rs1, rs2);
            gold.set(rd, va & vb);
            break;
          case 3:
            a.or_(rd, rs1, rs2);
            gold.set(rd, va | vb);
            break;
          case 4:
            a.xor_(rd, rs1, rs2);
            gold.set(rd, va ^ vb);
            break;
          case 5:
            a.sll(rd, rs1, rs2);
            gold.set(rd, static_cast<int64_t>(ua << (ub & 63)));
            break;
          case 6:
            a.srl(rd, rs1, rs2);
            gold.set(rd, static_cast<int64_t>(ua >> (ub & 63)));
            break;
          case 7:
            a.sra(rd, rs1, rs2);
            gold.set(rd, va >> (ub & 63));
            break;
          case 8:
            a.slt(rd, rs1, rs2);
            gold.set(rd, va < vb ? 1 : 0);
            break;
          case 9:
            a.sltu(rd, rs1, rs2);
            gold.set(rd, ua < ub ? 1 : 0);
            break;
          case 10:
            a.addi(rd, rs1, imm);
            gold.set(rd, static_cast<int64_t>(ua + imm));
            break;
          case 11:
            a.andi(rd, rs1, imm);
            gold.set(rd, va & imm);
            break;
          case 12:
            a.ori(rd, rs1, imm);
            gold.set(rd, va | imm);
            break;
          case 13:
            a.xori(rd, rs1, imm);
            gold.set(rd, va ^ imm);
            break;
          case 14:
            a.slli(rd, rs1, sh6);
            gold.set(rd, static_cast<int64_t>(ua << sh6));
            break;
          case 15:
            a.srli(rd, rs1, sh6);
            gold.set(rd, static_cast<int64_t>(ua >> sh6));
            break;
          case 16:
            a.srai(rd, rs1, sh6);
            gold.set(rd, va >> sh6);
            break;
          case 17:
            a.mul(rd, rs1, rs2);
            gold.set(rd, static_cast<int64_t>(ua * ub));
            break;
          case 18: { // mulhu
            a.mulhu(rd, rs1, rs2);
            unsigned __int128 p = static_cast<unsigned __int128>(ua) *
                                  static_cast<unsigned __int128>(ub);
            gold.set(rd, static_cast<int64_t>(
                             static_cast<uint64_t>(p >> 64)));
            break;
          }
          case 19: { // divu (guard /0 semantics)
            a.divu(rd, rs1, rs2);
            gold.set(rd, ub == 0 ? -1
                                 : static_cast<int64_t>(ua / ub));
            break;
          }
          case 20: { // remu
            a.remu(rd, rs1, rs2);
            gold.set(rd, ub == 0 ? va : static_cast<int64_t>(ua % ub));
            break;
          }
          case 21:
            a.addw(rd, rs1, rs2);
            gold.set(rd, static_cast<int64_t>(
                             sext32(static_cast<int64_t>(
                                 static_cast<uint32_t>(ua) +
                                 static_cast<uint32_t>(ub)))));
            break;
          case 22:
            a.slliw(rd, rs1, sh5);
            gold.set(rd,
                     static_cast<int64_t>(sext32(static_cast<int64_t>(
                         static_cast<uint32_t>(ua) << sh5))));
            break;
          case 23:
            a.sraiw(rd, rs1, sh5);
            gold.set(rd, static_cast<int64_t>(
                             sext32(static_cast<int64_t>(ua)) >> sh5));
            break;
        }
    }
    a.halt(zero);
    a.finalize();

    auto result = core.run(100000);
    ASSERT_TRUE(result.halted);
    for (Reg r = 5; r <= 15; ++r) {
        EXPECT_EQ(static_cast<int64_t>(core.reg(r)), gold.get(r))
            << "x" << int(r) << " diverged (seed " << GetParam() << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluProgram,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

/** Memory property: random stores then loads of random widths land
 *  exactly where a byte-accurate golden memory says. */
class RandomMemProgram : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomMemProgram, LoadsSeeStores)
{
    Random rng(GetParam());
    FunctionalMemory mem(16 * MiB);
    MemHierarchy hier(1);
    MmioBus bus;
    RocketCore core(CoreConfig{}, mem, hier, &bus);
    mapStandardDevices(bus, core);
    Assembler a(mem, memmap::kDramBase);

    constexpr uint64_t kBuf = 0x200000; // device-space address
    std::vector<uint8_t> golden(256, 0);

    a.li(s0, static_cast<int64_t>(memmap::kDramBase + kBuf));
    for (int i = 0; i < 60; ++i) {
        uint32_t width = 1u << rng.below(4); // 1,2,4,8
        uint32_t off =
            static_cast<uint32_t>(rng.below(golden.size() - width));
        uint64_t val = rng.next();
        a.li(t0, static_cast<int64_t>(val));
        switch (width) {
          case 1: a.sb(t0, s0, static_cast<int32_t>(off)); break;
          case 2: a.sh(t0, s0, static_cast<int32_t>(off)); break;
          case 4: a.sw(t0, s0, static_cast<int32_t>(off)); break;
          default: a.sd(t0, s0, static_cast<int32_t>(off)); break;
        }
        for (uint32_t b = 0; b < width; ++b)
            golden[off + b] = static_cast<uint8_t>(val >> (8 * b));
    }
    a.halt(zero);
    a.finalize();
    ASSERT_TRUE(core.run(100000).halted);

    std::vector<uint8_t> actual(golden.size());
    mem.read(kBuf, actual.data(), actual.size());
    EXPECT_EQ(actual, golden) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMemProgram,
                         ::testing::Values(7, 11, 19, 42, 1234, 99991));

} // namespace
} // namespace firesim
