#include <gtest/gtest.h>

#include <memory>

#include "riscv/assembler.hh"
#include "riscv/core.hh"
#include "riscv/rocc.hh"

namespace firesim
{
namespace
{

using namespace regs;

struct RoccFixture : public ::testing::Test
{
    RoccFixture()
        : mem(64 * MiB), hier(1)
    {
        core = std::make_unique<RocketCore>(CoreConfig{}, mem, hier, &bus);
        mapStandardDevices(bus, *core);
        hwacha = std::make_unique<HwachaModel>(HwachaConfig{}, mem);
        core->attachAccelerator(0, hwacha.get());
    }

    FunctionalMemory mem;
    MemHierarchy hier;
    MmioBus bus;
    std::unique_ptr<RocketCore> core;
    std::unique_ptr<HwachaModel> hwacha;
};

TEST_F(RoccFixture, VectorFillWritesMemory)
{
    Assembler a(mem, memmap::kDramBase);
    a.li(t0, 64); // vlen
    a.custom0(hwacha::kSetVlen, zero, t0, zero);
    a.li(t1, 0x10000);
    a.li(t2, static_cast<int64_t>(0xdeadbeefcafef00dULL));
    a.custom0(hwacha::kFill, zero, t1, t2);
    a.halt(zero);
    a.finalize();
    ASSERT_TRUE(core->run(10000).halted);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(mem.read64(0x10000 + 8 * i), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.read64(0x10000 + 8 * 64), 0u); // no overrun
}

TEST_F(RoccFixture, VectorMemcpyMovesExactly)
{
    for (int i = 0; i < 32; ++i)
        mem.write64(0x20000 + 8 * i, 0x1000 + i);
    Assembler a(mem, memmap::kDramBase);
    a.li(t0, 32);
    a.custom0(hwacha::kSetVlen, zero, t0, zero);
    a.li(t1, 0x30000); // dst
    a.li(t2, 0x20000); // src
    a.custom0(hwacha::kMemcpy, zero, t1, t2);
    a.halt(zero);
    a.finalize();
    ASSERT_TRUE(core->run(10000).halted);
    for (int i = 0; i < 32; ++i)
        ASSERT_EQ(mem.read64(0x30000 + 8 * i), 0x1000u + i);
}

TEST_F(RoccFixture, SaxpyComputes)
{
    for (int i = 0; i < 16; ++i) {
        mem.write64(0x40000 + 8 * i, i);      // x
        mem.write64(0x50000 + 8 * i, 100);    // y
    }
    Assembler a(mem, memmap::kDramBase);
    a.li(t0, 16);
    a.custom0(hwacha::kSetVlen, zero, t0, zero);
    a.li(t0, 3); // a = 3
    a.custom0(hwacha::kSetScalar, zero, t0, zero);
    a.li(t1, 0x40000);
    a.li(t2, 0x50000);
    a.custom0(hwacha::kSaxpy, zero, t1, t2);
    a.halt(zero);
    a.finalize();
    ASSERT_TRUE(core->run(10000).halted);
    for (uint64_t i = 0; i < 16; ++i)
        ASSERT_EQ(mem.read64(0x40000 + 8 * i), i + 300);
}

TEST_F(RoccFixture, VectorBeatsScalarLoop)
{
    // Vector-accelerated fill vs a scalar store loop over the same
    // 512 elements: the whole point of attaching a Hwacha (Table II).
    auto vector_cycles = [&] {
        Assembler a(mem, memmap::kDramBase);
        a.li(t0, 512);
        a.custom0(hwacha::kSetVlen, zero, t0, zero);
        a.li(t1, 0x60000);
        a.li(t2, 7);
        a.custom0(hwacha::kFill, zero, t1, t2);
        a.halt(zero);
        a.finalize();
        return core->run(100000).cycles;
    }();

    RocketCore scalar(CoreConfig{}, mem, hier, &bus);
    Assembler b(mem, memmap::kDramBase + 0x100000);
    b.li(t0, 512);
    b.li(t1, static_cast<int64_t>(memmap::kDramBase + 0x70000));
    b.li(t2, 7);
    Assembler::Label loop = b.newLabel();
    b.bind(loop);
    b.sd(t2, t1, 0);
    b.addi(t1, t1, 8);
    b.addi(t0, t0, -1);
    b.bne(t0, zero, loop);
    b.halt(zero);
    b.finalize();
    scalar.reset(memmap::kDramBase + 0x100000);
    Cycles scalar_cycles = scalar.run(100000).cycles;

    EXPECT_LT(vector_cycles * 3, scalar_cycles);
}

TEST_F(RoccFixture, BusyCounterAccumulates)
{
    Assembler a(mem, memmap::kDramBase);
    a.li(t0, 128);
    a.custom0(hwacha::kSetVlen, zero, t0, zero);
    a.li(t1, 0x80000);
    a.custom0(hwacha::kFill, zero, t1, zero);
    a.custom0(hwacha::kReadBusy, a0, zero, zero);
    a.halt(a0);
    a.finalize();
    auto result = core->run(10000);
    // 128 elements over the memory bound (1024 B / 16 B-per-cycle) plus
    // startup.
    EXPECT_GE(result.exitCode, 64u);
    EXPECT_EQ(result.exitCode, hwacha->busyCycles());
}

TEST_F(RoccFixture, HlsAcceleratorCallback)
{
    // The HLS path: a popcount "accelerator" from a C++ kernel.
    HlsAccelerator popcnt("popcount", [](uint32_t, uint64_t rs1,
                                         uint64_t) {
        RoccResult r;
        r.rd = static_cast<uint64_t>(__builtin_popcountll(rs1));
        r.latency = 3;
        return r;
    });
    core->attachAccelerator(1, &popcnt);

    Assembler a(mem, memmap::kDramBase);
    a.li(t0, static_cast<int64_t>(0xf0f0f0f0f0f0f0f0ULL));
    a.custom1(0, a0, t0, zero);
    a.halt(a0);
    a.finalize();
    EXPECT_EQ(core->run(1000).exitCode, 32u);
}

TEST_F(RoccFixture, UnattachedSlotPanics)
{
    Assembler a(mem, memmap::kDramBase);
    a.custom1(0, a0, zero, zero); // nothing attached on custom-1
    a.halt(zero);
    a.finalize();
    EXPECT_DEATH(core->run(100), "no accelerator");
}

TEST_F(RoccFixture, KernelBeforeConfigIsFatal)
{
    Assembler a(mem, memmap::kDramBase);
    a.li(t1, 0x10000);
    a.custom0(hwacha::kFill, zero, t1, zero); // no vsetcfg first
    a.halt(zero);
    a.finalize();
    EXPECT_EXIT(core->run(100), ::testing::ExitedWithCode(1),
                "vsetcfg");
}

} // namespace
} // namespace firesim
