#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace firesim
{
namespace
{

TEST(EventQueue, RunsInTimestampOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(42, [&order, i] { order.push_back(i); });
    q.runUntil(43);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilExcludesLimitCycle)
{
    EventQueue q;
    bool at_limit = false, before_limit = false;
    q.schedule(9, [&] { before_limit = true; });
    q.schedule(10, [&] { at_limit = true; });
    q.runUntil(10);
    EXPECT_TRUE(before_limit);
    EXPECT_FALSE(at_limit);
    // The event at 10 runs in the next window.
    q.runUntil(11);
    EXPECT_TRUE(at_limit);
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue q;
    Cycles seen = 0;
    q.schedule(7, [&] { seen = q.now(); });
    q.runUntil(100);
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, EventsMayScheduleWithinWindow)
{
    EventQueue q;
    std::vector<Cycles> fired;
    q.schedule(5, [&] {
        fired.push_back(q.now());
        q.scheduleIn(3, [&] { fired.push_back(q.now()); });
    });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Cycles>{5, 8}));
}

TEST(EventQueue, ChainedSelfRescheduleStopsAtWindow)
{
    EventQueue q;
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        q.scheduleIn(10, tick);
    };
    q.schedule(0, tick);
    q.runUntil(100);
    // Fires at 0,10,...,90 = 10 times; the one at 100 stays pending.
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, DrainRunsEverything)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(1000000, [&] { ++count; });
    Cycles last = q.drain();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(last, 1000000u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), kNoCycle);
    q.schedule(55, [] {});
    EXPECT_EQ(q.nextEventCycle(), 55u);
}

TEST(EventQueueDeath, PastSchedulingIsBug)
{
    EventQueue q;
    q.runUntil(50);
    EXPECT_DEATH(q.schedule(49, [] {}), "before now");
}

TEST(EventQueueDeath, RunUntilBackwardsIsBug)
{
    EventQueue q;
    q.runUntil(50);
    EXPECT_DEATH(q.runUntil(10), "backwards");
}

} // namespace
} // namespace firesim
