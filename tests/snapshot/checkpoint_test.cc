/**
 * @file
 * Cluster-level checkpoint/restore tests: the headline byte-identity
 * guarantee (save at R, restore, run to R+K matches the uninterrupted
 * run exactly), restore-time validation (wrong topology, wrong cycle,
 * corrupted files are rejected with diagnostics, never crashes), the
 * CheckpointManager's periodic + signal-driven snapshots, warm-boot
 * scenario forking, and the SIGKILL kill-and-resume recovery path.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "manager/checkpoint.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "snapshot/snapshot.hh"

namespace firesim
{
namespace
{

ClusterConfig
testConfig()
{
    ClusterConfig cc;
    cc.linkLatency = 400; // short rounds keep the tests fast
    cc.switchLatency = 10;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 2000;
    return cc;
}

/** Endless ping loop: traffic in flight at every possible barrier. */
void
spawnPinger(NodeSystem &from, size_t to_index)
{
    from.os().spawn("pinger", -1, [&from, to_index]() -> Task<> {
        while (true)
            co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

std::string
statsDump(Cluster &clu)
{
    return clu.telemetry()->registry().dumpJson(clu.now());
}

std::string
tempSnap(const char *name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

TEST(ClusterCheckpoint, SaveRestoreContinuationIsByteIdentical)
{
    constexpr Cycles kSave = 200000, kTotal = 400000;
    std::string path = tempSnap("fsnp_roundtrip_cluster.snap");

    // The uninterrupted reference run.
    std::string ref_dump;
    {
        Cluster ref(topologies::singleTor(2), testConfig());
        spawnPinger(ref.node(0), 1);
        ref.run(kTotal);
        ref_dump = statsDump(ref);
    }

    // The saved run: identical to the reference, with a snapshot at
    // kSave that must not perturb anything downstream.
    {
        Cluster saver(topologies::singleTor(2), testConfig());
        spawnPinger(saver.node(0), 1);
        saver.run(kSave);
        ASSERT_EQ(saver.saveSnapshot(path), "");
        saver.run(kTotal - kSave);
        EXPECT_EQ(statsDump(saver), ref_dump)
            << "saving a snapshot must not change the simulation";
    }

    // The restored run: replay to kSave, verify + apply, continue.
    Cluster restored(topologies::singleTor(2), testConfig());
    spawnPinger(restored.node(0), 1);
    ASSERT_EQ(resumeFromSnapshot(restored, path), "");
    EXPECT_EQ(restored.now(), kSave);
    restored.run(kTotal - kSave);
    EXPECT_EQ(statsDump(restored), ref_dump)
        << "restored continuation diverged from the unbroken run";
    std::remove(path.c_str());
}

TEST(ClusterCheckpoint, RestoreAcrossParallelHostsIsByteIdentical)
{
    // Snapshot a single-threaded run, restore into a 2-worker fabric:
    // determinism across parallelHosts extends to snapshots.
    constexpr Cycles kSave = 120000, kTotal = 240000;
    std::string path = tempSnap("fsnp_parhosts.snap");

    std::string ref_dump;
    {
        Cluster ref(topologies::singleTor(4), testConfig());
        spawnPinger(ref.node(0), 1);
        spawnPinger(ref.node(2), 3);
        ref.run(kTotal);
        ref_dump = statsDump(ref);
    }
    {
        Cluster saver(topologies::singleTor(4), testConfig());
        spawnPinger(saver.node(0), 1);
        spawnPinger(saver.node(2), 3);
        saver.run(kSave);
        ASSERT_EQ(saver.saveSnapshot(path), "");
    }

    ClusterConfig cc = testConfig();
    cc.parallelHosts = 2;
    Cluster wide(topologies::singleTor(4), cc);
    spawnPinger(wide.node(0), 1);
    spawnPinger(wide.node(2), 3);
    ASSERT_EQ(resumeFromSnapshot(wide, path), "");
    wide.run(kTotal - kSave);
    EXPECT_EQ(statsDump(wide), ref_dump);
    std::remove(path.c_str());
}

TEST(ClusterCheckpoint, LoadWithoutReplayIsRejected)
{
    std::string path = tempSnap("fsnp_noreplay.snap");
    {
        Cluster saver(topologies::singleTor(2), testConfig());
        spawnPinger(saver.node(0), 1);
        saver.run(80000);
        ASSERT_EQ(saver.saveSnapshot(path), "");
    }
    Cluster fresh(topologies::singleTor(2), testConfig());
    spawnPinger(fresh.node(0), 1);
    std::string e = fresh.loadSnapshot(path);
    ASSERT_NE(e, "");
    EXPECT_NE(e.find("replay"), std::string::npos) << e;
    std::remove(path.c_str());
}

TEST(ClusterCheckpoint, MismatchedTopologyIsRejected)
{
    std::string path = tempSnap("fsnp_topo.snap");
    {
        Cluster saver(topologies::singleTor(2), testConfig());
        saver.run(40000);
        ASSERT_EQ(saver.saveSnapshot(path), "");
    }
    Cluster other(topologies::singleTor(4), testConfig());
    std::string e = resumeFromSnapshot(other, path);
    ASSERT_NE(e, "");
    EXPECT_NE(e.find("hash"), std::string::npos) << e;
    std::remove(path.c_str());
}

TEST(ClusterCheckpoint, CorruptedSnapshotIsRejectedWithDiagnostics)
{
    std::string path = tempSnap("fsnp_corrupt.snap");
    {
        Cluster saver(topologies::singleTor(2), testConfig());
        spawnPinger(saver.node(0), 1);
        saver.run(80000);
        ASSERT_EQ(saver.saveSnapshot(path), "");
    }
    std::string image;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        image = ss.str();
    }
    ASSERT_GT(image.size(), 1000u);

    auto writeImage = [&path](const std::string &img) {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out << img;
    };

    // A flipped byte mid-file: some section CRC must catch it.
    {
        std::string bad = image;
        bad[bad.size() / 2] ^= 0x10;
        writeImage(bad);
        Cluster clu(topologies::singleTor(2), testConfig());
        spawnPinger(clu.node(0), 1);
        std::string e = resumeFromSnapshot(clu, path);
        ASSERT_NE(e, "");
        EXPECT_NE(e.find("CRC"), std::string::npos) << e;
    }
    // Truncation: clean diagnostic, never a crash.
    {
        writeImage(image.substr(0, image.size() / 3));
        Cluster clu(topologies::singleTor(2), testConfig());
        spawnPinger(clu.node(0), 1);
        EXPECT_NE(resumeFromSnapshot(clu, path), "");
    }
    std::remove(path.c_str());
}

TEST(ClusterCheckpoint, PeriodicAndSignalDrivenCheckpoints)
{
    constexpr Cycles kSpan = 40000; // 100 rounds at quantum 400
    std::string path = tempSnap("fsnp_mgr.snap");

    std::string ref_dump;
    {
        Cluster ref(topologies::singleTor(2), testConfig());
        spawnPinger(ref.node(0), 1);
        ref.run(kSpan + 20000);
        ref_dump = statsDump(ref);
    }

    CheckpointManager::installSignalHandlers();
    CheckpointManager::clearSignal();
    {
        Cluster clu(topologies::singleTor(2), testConfig());
        spawnPinger(clu.node(0), 1);
        CheckpointOptions opts;
        opts.path = path;
        opts.everyRounds = 50; // one checkpoint per 20000 cycles
        CheckpointManager mgr(clu, opts);

        EXPECT_TRUE(mgr.run(kSpan));
        EXPECT_EQ(mgr.checkpointsWritten(), 1u)
            << "one periodic checkpoint inside the span";
        EXPECT_FALSE(mgr.interrupted());

        // A delivered SIGTERM stops the next run at its first barrier
        // and leaves a final snapshot behind.
        std::raise(SIGTERM);
        EXPECT_FALSE(mgr.run(1000000));
        EXPECT_TRUE(mgr.interrupted());
        EXPECT_EQ(mgr.checkpointsWritten(), 2u);
        EXPECT_EQ(clu.now(), kSpan) << "stop at the barrier, not later";
    }
    CheckpointManager::clearSignal();

    // The final snapshot resumes into a byte-identical continuation.
    Cluster resumed(topologies::singleTor(2), testConfig());
    spawnPinger(resumed.node(0), 1);
    ASSERT_EQ(resumeFromSnapshot(resumed, path), "");
    EXPECT_EQ(resumed.now(), kSpan);
    resumed.run(20000);
    EXPECT_EQ(statsDump(resumed), ref_dump);
    std::remove(path.c_str());
}

TEST(ClusterCheckpoint, WarmBootForksDivergeDeterministically)
{
    // Boot once (the expensive part), then fork per scenario: each
    // child inherits the booted state and runs a different span, so
    // the forks diverge — but each fork is itself deterministic.
    ClusterConfig cc = testConfig();
    cc.telemetry.enabled = false; // keep the forks free of dump files
    Cluster clu(topologies::singleTor(2), cc);
    spawnPinger(clu.node(0), 1);
    clu.run(100000);

    auto scenario = [&clu](uint32_t k) -> int {
        clu.run((k + 1) * 100000);
        uint64_t frames =
            clu.node(0).blade().nic().stats().framesSent.value();
        return static_cast<int>(frames % 251);
    };

    std::vector<int> first = runScenarioForks(clu, 2, scenario);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_NE(first[0], first[1])
        << "different scenarios must diverge from the shared boot";

    // Forking again from the unchanged parent replays identically.
    std::vector<int> second = runScenarioForks(clu, 2, scenario);
    EXPECT_EQ(first, second);
}

TEST(ClusterCheckpoint, SigkillAndResumeIsByteIdentical)
{
    // Crash recovery end to end: SIGKILL a checkpointing run mid-way
    // (no handler can run), then resume from the last complete
    // snapshot — atomic tmp+fsync+rename means whatever file exists
    // is whole — and match the unbroken run byte for byte.
    std::string path = tempSnap("fsnp_kill.snap");

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        Cluster clu(topologies::singleTor(2), testConfig());
        spawnPinger(clu.node(0), 1);
        CheckpointOptions opts;
        opts.path = path;
        opts.everyRounds = 25; // checkpoint every 10000 cycles
        CheckpointManager mgr(clu, opts);
        mgr.run(1000000000); // far longer than the parent will allow
        ::_exit(0);
    }

    // Wait for the first complete checkpoint, then kill without mercy.
    bool seen = false;
    for (int i = 0; i < 15000 && !seen; ++i) {
        seen = ::access(path.c_str(), F_OK) == 0;
        if (!seen)
            ::usleep(2000);
    }
    ASSERT_TRUE(seen) << "child never produced a checkpoint";
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Resume from whatever checkpoint survived and run a fixed tail.
    Cluster resumed(topologies::singleTor(2), testConfig());
    spawnPinger(resumed.node(0), 1);
    ASSERT_EQ(resumeFromSnapshot(resumed, path), "");
    Cycles at_resume = resumed.now();
    ASSERT_GT(at_resume, 0u);
    resumed.run(100000);
    Cycles total = resumed.now();
    std::string resumed_dump = statsDump(resumed);

    Cluster ref(topologies::singleTor(2), testConfig());
    spawnPinger(ref.node(0), 1);
    ref.run(total);
    EXPECT_EQ(resumed_dump, statsDump(ref))
        << "resumed-after-SIGKILL run diverged (resumed at cycle "
        << at_resume << ")";
    std::remove(path.c_str());
}

} // namespace
} // namespace firesim
