/**
 * @file
 * Distributed checkpoint/restore: a two-shard cluster (AF_UNIX
 * socketpair transport, two threads standing in for two processes)
 * snapshots at the same round barrier — one `<path>.rank<N>` file per
 * shard — and a fresh shard pair resumed from those files continues
 * byte-identically to the uninterrupted two-shard run. Also pins the
 * rank/shard-count validation on the per-rank files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "manager/checkpoint.hh"
#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "net/remote/socket.hh"
#include "snapshot/snapshot.hh"

namespace firesim
{
namespace
{

ClusterConfig
testConfig()
{
    ClusterConfig cc;
    cc.linkLatency = 400;
    cc.switchLatency = 10;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 2000;
    return cc;
}

void
spawnPinger(NodeSystem &from, size_t to_index)
{
    from.os().spawn("pinger", -1, [&from, to_index]() -> Task<> {
        while (true)
            co_await from.net().ping(Cluster::ipFor(to_index));
    });
}

ClusterConfig
shardConfig(uint32_t rank)
{
    ClusterConfig cc = testConfig();
    cc.shard.shards = 2;
    cc.shard.rank = rank;
    return cc;
}

/** Run one two-shard pair over a socketpair. @p body is called on
 *  each shard's thread with (cluster, rank); dumps are captured at
 *  the end. */
void
runShardPair(
    const std::function<void(Cluster &, uint32_t)> &body,
    std::string dumps[2])
{
    auto [fd0, fd1] = localSocketPair();
    std::vector<std::pair<uint32_t, SocketFd>> fds0, fds1;
    fds0.emplace_back(1, std::move(fd0));
    fds1.emplace_back(0, std::move(fd1));

    // Transport byte counters (cluster.shard.*) depend on kernel
    // recv() chunking, so byte identity is asserted on the filtered
    // dump — the same filter the snapshot's own stats check uses.
    std::thread shard1([&] {
        Cluster c1(topologies::twoLevel(2, 2), shardConfig(1),
                   std::move(fds1));
        body(c1, 1);
        dumps[1] = stripHostTimingStats(
            c1.telemetry()->registry().dumpJson(c1.now()));
    });
    {
        Cluster c0(topologies::twoLevel(2, 2), shardConfig(0),
                   std::move(fds0));
        body(c0, 0);
        dumps[0] = stripHostTimingStats(
            c0.telemetry()->registry().dumpJson(c0.now()));
    }
    shard1.join();
}

/** The workload both shards agree on: rank 0 owns global nodes 0,1;
 *  rank 1 owns global nodes 2,3 (as local 0,1). */
void
spawnWork(Cluster &clu, uint32_t rank)
{
    if (rank == 0) {
        spawnPinger(clu.node(0), 3); // cross-shard traffic
        spawnPinger(clu.node(1), 0);
    } else {
        spawnPinger(clu.node(0), 1); // global node 2 -> 1, cross-shard
    }
}

TEST(DistCheckpoint, TwoShardRestoreIsByteIdentical)
{
    constexpr Cycles kSave = 200000, kTotal = 400000;
    std::string path = ::testing::TempDir() + "fsnp_dist.snap";
    std::remove((path + ".rank0").c_str());
    std::remove((path + ".rank1").c_str());

    // Reference: the uninterrupted two-shard run.
    std::string ref[2];
    runShardPair(
        [&](Cluster &clu, uint32_t rank) {
            spawnWork(clu, rank);
            clu.run(kTotal);
        },
        ref);

    // Save: both ranks snapshot at the same barrier, then continue —
    // the continuation must stay identical to the reference.
    std::string saved[2];
    runShardPair(
        [&](Cluster &clu, uint32_t rank) {
            spawnWork(clu, rank);
            clu.run(kSave);
            ASSERT_EQ(clu.saveSnapshot(path), "") << "rank " << rank;
            clu.run(kTotal - kSave);
        },
        saved);
    EXPECT_EQ(saved[0], ref[0]);
    EXPECT_EQ(saved[1], ref[1]);

    // Restore: a fresh pair replays to the barrier (both shards must
    // replay together — the rounds barrier needs both ends), loads
    // its rank file, and continues.
    std::string restored[2];
    runShardPair(
        [&](Cluster &clu, uint32_t rank) {
            spawnWork(clu, rank);
            ASSERT_EQ(resumeFromSnapshot(clu, path), "")
                << "rank " << rank;
            EXPECT_EQ(clu.now(), kSave);
            clu.run(kTotal - kSave);
        },
        restored);
    EXPECT_EQ(restored[0], ref[0])
        << "rank 0 diverged after distributed restore";
    EXPECT_EQ(restored[1], ref[1])
        << "rank 1 diverged after distributed restore";

    // The per-rank files really are per-rank: rank 0's file refuses
    // to load into a single-process cluster of the same topology.
    {
        SnapshotReader r;
        ASSERT_EQ(r.open(path + ".rank0"), "");
        EXPECT_EQ(r.header().shards, 2u);
        EXPECT_EQ(r.header().rank, 0u);
        EXPECT_EQ(r.header().cycle, kSave);
    }
    std::remove((path + ".rank0").c_str());
    std::remove((path + ".rank1").c_str());
}

} // namespace
} // namespace firesim
