/**
 * @file
 * Format-level tests of the snapshot subsystem: Serializer /
 * Deserializer round trips (including a deterministic fuzz sweep),
 * the never-crash discipline on malformed input, and the
 * SnapshotWriter / SnapshotReader container — truncation, bit flips,
 * bad magic, and version skew are all rejected with a diagnostic
 * naming what went wrong.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "snapshot/serial.hh"
#include "snapshot/snapshot.hh"

namespace firesim
{
namespace
{

TEST(SnapshotSerial, PrimitivesRoundTrip)
{
    Serializer s;
    s.putU(0);
    s.putU(300);
    s.putU(~0ull);
    s.putI(-1);
    s.putI(1234567);
    s.putB(true);
    s.putB(false);
    s.putFixed32(0xdeadbeef);
    s.putFixed64(0x0123456789abcdefull);
    s.putD(3.141592653589793);
    s.putStr("hello snapshot");
    s.putStr("");

    Deserializer d(s.takeBytes());
    EXPECT_EQ(d.getU(), 0u);
    EXPECT_EQ(d.getU(), 300u);
    EXPECT_EQ(d.getU(), ~0ull);
    EXPECT_EQ(d.getI(), -1);
    EXPECT_EQ(d.getI(), 1234567);
    EXPECT_TRUE(d.getB());
    EXPECT_FALSE(d.getB());
    EXPECT_EQ(d.getFixed32(), 0xdeadbeefu);
    EXPECT_EQ(d.getFixed64(), 0x0123456789abcdefull);
    EXPECT_EQ(d.getD(), 3.141592653589793);
    EXPECT_EQ(d.getStr(), "hello snapshot");
    EXPECT_EQ(d.getStr(), "");
    EXPECT_TRUE(d.ok());
    EXPECT_TRUE(d.atEnd());
}

/** Deterministic xorshift so the fuzz sweep replays identically. */
uint64_t
nextRand(uint64_t &x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

TEST(SnapshotSerial, FuzzRoundTrip)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        uint64_t rng = seed * 0x9e3779b97f4a7c15ull;
        std::vector<int> kinds;
        std::vector<uint64_t> vals;
        Serializer s;
        for (int i = 0; i < 500; ++i) {
            uint64_t v = nextRand(rng);
            int kind = static_cast<int>(v % 4);
            kinds.push_back(kind);
            vals.push_back(v);
            switch (kind) {
              case 0: s.putU(v); break;
              case 1: s.putI(static_cast<int64_t>(v)); break;
              case 2: s.putB((v >> 8) & 1); break;
              default: s.putFixed64(v); break;
            }
        }
        Deserializer d(s.takeBytes());
        for (int i = 0; i < 500; ++i) {
            uint64_t v = vals[i];
            switch (kinds[i]) {
              case 0: EXPECT_EQ(d.getU(), v); break;
              case 1:
                EXPECT_EQ(d.getI(), static_cast<int64_t>(v));
                break;
              case 2: EXPECT_EQ(d.getB(), ((v >> 8) & 1) != 0); break;
              default: EXPECT_EQ(d.getFixed64(), v); break;
            }
        }
        EXPECT_TRUE(d.ok()) << d.error();
        EXPECT_TRUE(d.atEnd());
    }
}

TEST(SnapshotSerial, TruncationNeverCrashes)
{
    Serializer s;
    s.putU(1u << 20);
    s.putStr("some payload");
    s.putFixed64(42);
    std::string full = s.takeBytes();

    // Read the same schema from every possible truncation; each one
    // must latch a clean failure, never crash or read out of bounds.
    for (size_t cut = 0; cut < full.size(); ++cut) {
        Deserializer d(full.substr(0, cut));
        d.getU();
        d.getStr();
        d.getFixed64();
        EXPECT_FALSE(d.ok()) << "cut at " << cut;
        EXPECT_NE(d.error().find("snapshot decode error"),
                  std::string::npos);
    }
}

TEST(SnapshotSerial, FailureLatchesAndReturnsZeros)
{
    Deserializer d(std::string("\xff\xff", 2)); // unterminated varint
    EXPECT_EQ(d.getU(), 0u);
    EXPECT_FALSE(d.ok());
    std::string first = d.error();
    EXPECT_EQ(d.getU(), 0u);
    EXPECT_EQ(d.getStr(), "");
    EXPECT_EQ(d.error(), first) << "first error must stay latched";
}

// ---- container round trip + corruption ------------------------------

SnapshotWriter
makeWriter()
{
    SnapshotHeader hdr;
    hdr.topoHash = 0x1122334455667788ull;
    hdr.shards = 2;
    hdr.rank = 1;
    hdr.round = 7;
    hdr.cycle = 2800;
    SnapshotWriter w(hdr);
    w.addSection("alpha", std::string("alpha-payload"));
    w.addSection("beta", std::string(1000, '\xab'));
    w.addSection("empty", std::string());
    return w;
}

TEST(SnapshotContainer, EncodeParseRoundTrip)
{
    SnapshotWriter w = makeWriter();
    SnapshotReader r;
    ASSERT_EQ(r.parse(w.encode()), "");
    EXPECT_EQ(r.header().topoHash, 0x1122334455667788ull);
    EXPECT_EQ(r.header().shards, 2u);
    EXPECT_EQ(r.header().rank, 1u);
    EXPECT_EQ(r.header().round, 7u);
    EXPECT_EQ(r.header().cycle, 2800u);
    ASSERT_TRUE(r.hasSection("beta"));
    SnapshotErrors err;
    EXPECT_EQ(r.section("alpha", err), "alpha-payload");
    EXPECT_EQ(r.section("beta", err).size(), 1000u);
    EXPECT_EQ(r.section("empty", err), "");
    EXPECT_TRUE(err.ok()) << err.str();
    EXPECT_FALSE(r.hasSection("gamma"));
    r.section("gamma", err);
    EXPECT_FALSE(err.ok()) << "missing section must fail the lookup";
}

TEST(SnapshotContainer, TruncatedImageRejected)
{
    std::string image = makeWriter().encode();
    // Every truncation point must produce a diagnostic, not a crash.
    for (size_t cut : {size_t(0), size_t(3), size_t(10),
                       image.size() / 2, image.size() - 1}) {
        SnapshotReader r;
        std::string e = r.parse(image.substr(0, cut));
        EXPECT_NE(e, "") << "cut at " << cut;
    }
}

TEST(SnapshotContainer, FlippedByteNamesTheSection)
{
    std::string image = makeWriter().encode();
    // Flip a byte deep inside the big "beta" payload: its CRC must
    // catch it and the error must say which section died.
    size_t at = image.find(std::string(8, '\xab'));
    ASSERT_NE(at, std::string::npos);
    image[at + 4] ^= 0x01;
    SnapshotReader r;
    std::string e = r.parse(image);
    ASSERT_NE(e, "");
    EXPECT_NE(e.find("beta"), std::string::npos)
        << "diagnostic should name the corrupted section: " << e;
}

TEST(SnapshotContainer, BadMagicRejected)
{
    std::string image = makeWriter().encode();
    image[0] ^= 0x40;
    SnapshotReader r;
    std::string e = r.parse(image);
    ASSERT_NE(e, "");
    EXPECT_NE(e.find("magic"), std::string::npos) << e;
}

TEST(SnapshotContainer, WrongVersionRejected)
{
    std::string image = makeWriter().encode();
    image[4] = static_cast<char>(kSnapshotVersion + 9); // version LSB
    SnapshotReader r;
    std::string e = r.parse(image);
    ASSERT_NE(e, "");
    EXPECT_NE(e.find("version"), std::string::npos) << e;
}

TEST(SnapshotContainer, FileRoundTripAndMissingFile)
{
    std::string path = ::testing::TempDir() + "fsnp_roundtrip.snap";
    SnapshotWriter w = makeWriter();
    ASSERT_EQ(w.writeFile(path), "");
    SnapshotReader r;
    ASSERT_EQ(r.open(path), "");
    EXPECT_EQ(r.sectionNames().size(), 3u);
    std::remove(path.c_str());

    SnapshotReader missing;
    EXPECT_NE(missing.open(path), "") << "vanished file must error";
}

TEST(SnapshotContainer, RankPath)
{
    EXPECT_EQ(snapshotRankPath("ck.snap", 1, 0), "ck.snap");
    EXPECT_EQ(snapshotRankPath("ck.snap", 4, 2), "ck.snap.rank2");
}

} // namespace
} // namespace firesim
