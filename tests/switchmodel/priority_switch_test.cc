#include <gtest/gtest.h>

#include <memory>

#include "switchmodel/priority_switch.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

/**
 * Three senders congest one receiver: A and B stream elephant frames
 * at aggregate 2x line rate, so the output queue toward C grows; D
 * then sends one mouse mid-burst. Under the base FIFO switch the mouse
 * waits behind the queued elephants; under the priority switch it
 * jumps the queue.
 */
struct PriorityFixture
{
    explicit PriorityFixture(std::unique_ptr<Switch> sw_in)
        : sw(std::move(sw_in))
    {
        a = std::make_unique<ScriptedEndpoint>("a");
        b = std::make_unique<ScriptedEndpoint>("b");
        c = std::make_unique<ScriptedEndpoint>("c");
        d = std::make_unique<ScriptedEndpoint>("d");
        fabric.addEndpoint(a.get());
        fabric.addEndpoint(b.get());
        fabric.addEndpoint(c.get());
        fabric.addEndpoint(d.get());
        fabric.addEndpoint(sw.get());
        fabric.connect(a.get(), 0, sw.get(), 0, 100);
        fabric.connect(b.get(), 0, sw.get(), 1, 100);
        fabric.connect(c.get(), 0, sw.get(), 2, 100);
        fabric.connect(d.get(), 0, sw.get(), 3, 100);
        sw->addMacEntry(MacAddr(0xcc), 2);
        fabric.finalize();
    }

    /** Cycle at which the mouse's last token reaches the receiver. */
    Cycles
    run()
    {
        // 6 elephants of ~1000 B back-to-back from A and from B: the
        // output port receives at 2x its drain rate and queues grow.
        EthFrame elephant(MacAddr(0xcc), MacAddr(0xaa), EtherType::Raw,
                          std::vector<uint8_t>(1000, 1));
        uint32_t flits = elephant.flitCount();
        for (int i = 0; i < 6; ++i) {
            a->sendAt(static_cast<Cycles>(i) * flits, elephant);
            b->sendAt(static_cast<Cycles>(i) * flits, elephant);
        }
        // ...then one 50 B mouse from D, arriving mid-burst.
        EthFrame mouse(MacAddr(0xcc), MacAddr(0xdd), EtherType::Ipv4,
                       std::vector<uint8_t>(36, 2));
        d->sendAt(3 * flits, mouse);
        fabric.run(40000);

        for (auto &[cycle, frame] : c->received)
            if (frame.size() < 128)
                return cycle;
        return kNoCycle;
    }

    TokenFabric fabric;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<ScriptedEndpoint> a, b, c, d;
};

SwitchConfig
threePort()
{
    SwitchConfig cfg;
    cfg.ports = 4;
    cfg.minLatency = 10;
    cfg.dropBound = 100000;
    return cfg;
}

TEST(PrioritySwitch, MiceJumpElephantQueues)
{
    PriorityFixture fifo(std::make_unique<Switch>(threePort()));
    Cycles fifo_arrival = fifo.run();
    ASSERT_NE(fifo_arrival, kNoCycle);

    PriorityFixture prio(std::make_unique<PrioritySwitch>(threePort()));
    Cycles prio_arrival = prio.run();
    ASSERT_NE(prio_arrival, kNoCycle);

    // Under FIFO the mouse drains after most of the elephant burst;
    // with strict priority it overtakes the queued elephants. The gap
    // is on the order of several elephant serialization times.
    EXPECT_LT(prio_arrival + 2 * 127, fifo_arrival);

    auto *psw = static_cast<PrioritySwitch *>(prio.sw.get());
    EXPECT_GE(psw->micePromotions(), 1u);
}

TEST(PrioritySwitch, AllTrafficStillDelivered)
{
    PriorityFixture prio(std::make_unique<PrioritySwitch>(threePort()));
    prio.run();
    // 12 elephants + 1 mouse, nothing lost or duplicated.
    EXPECT_EQ(prio.c->received.size(), 13u);
    EXPECT_EQ(prio.sw->stats().packetsDropped.value(), 0u);
}

TEST(PrioritySwitch, InheritsPortDownFaultHandling)
{
    SwitchConfig cfg;
    cfg.ports = 2;
    PrioritySwitch sw(cfg);
    sw.setPortDown(0, true);
    EXPECT_FALSE(sw.portUp(0));
    EXPECT_EQ(sw.stats().portTransitions.value(), 1u);
}

TEST(PrioritySwitch, ElephantOnlyTrafficMatchesFifoExactly)
{
    // Without mice the policy must be byte- and cycle-identical to the
    // base switch.
    auto run_one = [&](std::unique_ptr<Switch> sw) {
        PriorityFixture fix(std::move(sw));
        EthFrame elephant(MacAddr(0xcc), MacAddr(0xaa), EtherType::Raw,
                          std::vector<uint8_t>(700, 3));
        for (int i = 0; i < 4; ++i)
            fix.a->sendAt(static_cast<Cycles>(i) * 200, elephant);
        fix.fabric.run(10000);
        std::vector<Cycles> arrivals;
        for (auto &[cycle, frame] : fix.c->received)
            arrivals.push_back(cycle);
        return arrivals;
    };
    auto fifo = run_one(std::make_unique<Switch>(threePort()));
    auto prio = run_one(std::make_unique<PrioritySwitch>(threePort()));
    EXPECT_EQ(fifo, prio);
    EXPECT_EQ(fifo.size(), 4u);
}

} // namespace
} // namespace firesim
