/**
 * @file
 * Sliced-egress switch equivalence: a switch advanced as
 * ceil(ports/slicePorts) concurrent egress slices must deliver the
 * same frames at the same cycles with the same statistics as the
 * monolithic advance — for unicast, flooded broadcast, and
 * administratively-down ports, at any slice width and worker count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "switchmodel/switch.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

struct StarDigest
{
    std::vector<std::pair<Cycles, std::vector<uint8_t>>> frames;
    std::vector<uint64_t> stats;
    uint32_t sliceCount = 0;

    bool
    operator==(const StarDigest &o) const
    {
        return frames == o.frames && stats == o.stats;
    }
};

std::vector<uint64_t>
allStats(const Switch &sw)
{
    const SwitchStats &st = sw.stats();
    return {st.packetsIn.value(),          st.packetsOut.value(),
            st.packetsDropped.value(),     st.bytesIn.value(),
            st.bytesOut.value(),           st.broadcasts.value(),
            st.faultFlitsDroppedIn.value(),
            st.faultPacketsDroppedOut.value(),
            st.portTransitions.value()};
}

/**
 * A 6-port star: every endpoint sends three waves to its two
 * neighbours; @p flood adds frames to an unlearned MAC (flooded out of
 * every port, crossing all slice boundaries); @p down_port kills one
 * port before traffic starts.
 */
StarDigest
runStar(uint32_t slice_ports, unsigned hosts, bool flood,
        int down_port)
{
    SwitchConfig cfg;
    cfg.name = "tor";
    cfg.ports = 6;
    cfg.slicePorts = slice_ports;
    auto sw = std::make_unique<Switch>(cfg);

    TokenFabric fabric;
    fabric.addEndpoint(sw.get());
    std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
    for (uint32_t i = 0; i < 6; ++i) {
        eps.push_back(
            std::make_unique<ScriptedEndpoint>(csprintf("n%u", i)));
        fabric.addEndpoint(eps.back().get());
        fabric.connect(eps.back().get(), 0, sw.get(), i, 150);
        sw->addMacEntry(MacAddr(i + 1), i);
    }
    fabric.finalize();
    fabric.setParallelHosts(hosts);
    if (down_port >= 0)
        sw->setPortDown(static_cast<uint32_t>(down_port), true);

    for (uint32_t i = 0; i < 6; ++i) {
        for (int wave = 0; wave < 3; ++wave) {
            eps[i]->sendAt(
                20 + i * 7 + wave * 700,
                EthFrame(MacAddr(((i + 1) % 6) + 1), MacAddr(i + 1),
                         EtherType::Raw,
                         std::vector<uint8_t>(30 + i * 9 + wave,
                                              uint8_t(i + wave))));
            eps[i]->sendAt(
                350 + i * 7 + wave * 700,
                EthFrame(MacAddr(((i + 2) % 6) + 1), MacAddr(i + 1),
                         EtherType::Raw,
                         std::vector<uint8_t>(45 + i * 5 + wave,
                                              uint8_t(i * 2 + wave))));
            if (flood)
                eps[i]->sendAt(
                    500 + i * 7 + wave * 700,
                    EthFrame(MacAddr::broadcast(), MacAddr(i + 1),
                             EtherType::Raw,
                             std::vector<uint8_t>(24 + i, uint8_t(0xf0 + i))));
        }
    }

    fabric.run(5000);

    StarDigest d;
    for (auto &ep : eps)
        for (auto &[cycle, frame] : ep->received)
            d.frames.emplace_back(cycle, frame.bytes);
    d.stats = allStats(*sw);
    d.sliceCount = sw->advanceSliceCount();
    return d;
}

TEST(SlicedSwitch, SliceCountFollowsConfig)
{
    EXPECT_EQ(runStar(0, 1, false, -1).sliceCount, 1u);   // disabled
    EXPECT_EQ(runStar(2, 1, false, -1).sliceCount, 3u);   // ceil(6/2)
    EXPECT_EQ(runStar(4, 1, false, -1).sliceCount, 2u);   // ceil(6/4)
    EXPECT_EQ(runStar(6, 1, false, -1).sliceCount, 1u);   // ports<=width
    EXPECT_EQ(runStar(100, 1, false, -1).sliceCount, 1u);
}

TEST(SlicedSwitch, UnicastIdenticalAcrossSlicingAndWorkers)
{
    StarDigest mono = runStar(0, 1, false, -1);
    EXPECT_EQ(mono.frames.size(), 6u * 2u * 3u);
    for (uint32_t slice_ports : {2u, 3u, 4u})
        for (unsigned hosts : {1u, 4u})
            EXPECT_EQ(mono, runStar(slice_ports, hosts, false, -1))
                << "slicePorts=" << slice_ports << " hosts=" << hosts;
}

TEST(SlicedSwitch, FloodCrossesSliceBoundariesIdentically)
{
    // Flooded frames egress through every port, so every slice emits a
    // copy — the broadcast counter and per-port token streams must not
    // depend on the grouping.
    StarDigest mono = runStar(0, 1, true, -1);
    EXPECT_GT(mono.stats[5], 0u); // broadcasts
    for (uint32_t slice_ports : {2u, 3u})
        for (unsigned hosts : {1u, 4u})
            EXPECT_EQ(mono, runStar(slice_ports, hosts, true, -1));
}

TEST(SlicedSwitch, DownPortIdenticalAcrossSlicing)
{
    StarDigest mono = runStar(0, 1, false, 2);
    // Traffic addressed to the dead port's server is discarded at
    // egress; the counter must land in the same place regardless of
    // which slice owns the port.
    EXPECT_GT(mono.stats[7], 0u); // faultPacketsDroppedOut
    for (uint32_t slice_ports : {2u, 3u})
        for (unsigned hosts : {1u, 4u})
            EXPECT_EQ(mono, runStar(slice_ports, hosts, false, 2));
}

} // namespace
} // namespace firesim
