#include <gtest/gtest.h>

#include <memory>

#include "switchmodel/switch.hh"
#include "tests/net/scripted_endpoint.hh"

namespace firesim
{
namespace
{

EthFrame
frameTo(MacAddr dst, MacAddr src, uint32_t payload_bytes, uint8_t tag = 0)
{
    std::vector<uint8_t> payload(payload_bytes, tag);
    return EthFrame(dst, src, EtherType::Raw, payload);
}

/** Two servers connected by one switch, the paper's walk-through setup. */
class TwoServerSwitchTest : public ::testing::Test
{
  protected:
    static constexpr Cycles kLinkLat = 100; // l
    static constexpr Cycles kSwitchLat = 10; // n

    void
    build(Cycles drop_bound = 8192)
    {
        SwitchConfig cfg;
        cfg.name = "tor";
        cfg.ports = 2;
        cfg.minLatency = kSwitchLat;
        cfg.dropBound = drop_bound;
        sw = std::make_unique<Switch>(cfg);
        sw->addMacEntry(MacAddr(0xa), 0);
        sw->addMacEntry(MacAddr(0xb), 1);

        a = std::make_unique<ScriptedEndpoint>("A");
        b = std::make_unique<ScriptedEndpoint>("B");
        fabric.addEndpoint(a.get());
        fabric.addEndpoint(b.get());
        fabric.addEndpoint(sw.get());
        fabric.connect(a.get(), 0, sw.get(), 0, kLinkLat);
        fabric.connect(b.get(), 0, sw.get(), 1, kLinkLat);
        fabric.finalize();
    }

    TokenFabric fabric;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<ScriptedEndpoint> a, b;
};

TEST_F(TwoServerSwitchTest, PaperWalkthroughTiming)
{
    build();
    // Paper Section III-B2 example: a single-token packet sent by server
    // A at cycle m crosses link (l), switch (n), link (l): it arrives at
    // the input of server B's NIC at cycle 2l + m + n.
    const Cycles m = 37;
    // A frame of exactly one flit does not exist (14-byte header), so
    // use a 3-flit frame and account for serialization: the last token
    // leaves at m+2 and the switch timestamps from the last token. The
    // first token of the forwarded packet leaves the switch at
    // (m+2) + l + n, so its last token reaches B at (m+2) + 2l + n + 2.
    EthFrame f = frameTo(MacAddr(0xb), MacAddr(0xa), 3); // 17B -> 3 flits
    a->sendAt(m, f);
    fabric.run(2000);
    ASSERT_EQ(b->received.size(), 1u);
    EXPECT_EQ(b->received[0].first, (m + 2) + 2 * kLinkLat + kSwitchLat + 2);
    EXPECT_EQ(b->received[0].second.bytes, f.bytes);
}

TEST_F(TwoServerSwitchTest, RoundTripIsSymmetric)
{
    build();
    a->sendAt(50, frameTo(MacAddr(0xb), MacAddr(0xa), 3, 1));
    b->sendAt(50, frameTo(MacAddr(0xa), MacAddr(0xb), 3, 2));
    fabric.run(2000);
    ASSERT_EQ(a->received.size(), 1u);
    ASSERT_EQ(b->received.size(), 1u);
    EXPECT_EQ(a->received[0].first, b->received[0].first);
}

TEST_F(TwoServerSwitchTest, CountsPacketsAndBytes)
{
    build();
    EthFrame f = frameTo(MacAddr(0xb), MacAddr(0xa), 100);
    a->sendAt(0, f);
    fabric.run(3000);
    EXPECT_EQ(sw->stats().packetsIn.value(), 1u);
    EXPECT_EQ(sw->stats().packetsOut.value(), 1u);
    EXPECT_EQ(sw->stats().bytesIn.value(), f.size());
    EXPECT_EQ(sw->stats().bytesOut.value(), f.size());
    EXPECT_EQ(sw->stats().packetsDropped.value(), 0u);
}

TEST_F(TwoServerSwitchTest, BackToBackPacketsSerializeOnOutput)
{
    build();
    // Two packets destined to B arriving simultaneously-ish from A are
    // emitted back-to-back: the port sends one token per cycle.
    EthFrame f1 = frameTo(MacAddr(0xb), MacAddr(0xa), 50, 1); // 8 flits
    EthFrame f2 = frameTo(MacAddr(0xb), MacAddr(0xa), 50, 2);
    a->sendAt(0, f1);
    a->sendAt(8, f2);
    fabric.run(3000);
    ASSERT_EQ(b->received.size(), 2u);
    // Identical length packets, sent 8 flits apart, received 8 apart.
    EXPECT_EQ(b->received[1].first - b->received[0].first, 8u);
    EXPECT_EQ(b->received[0].second.payload()[0], 1);
    EXPECT_EQ(b->received[1].second.payload()[0], 2);
}

TEST_F(TwoServerSwitchTest, LineRateStreamNeverFalselyDrops)
{
    // Back-to-back packets from a single sender arrive at exactly line
    // rate; the output port keeps up, so even a tiny drop bound must not
    // discard anything (drops model congestion, not throughput).
    build(/*drop_bound=*/16);
    for (int i = 0; i < 50; ++i)
        a->sendAt(static_cast<Cycles>(i) * 8,
                  frameTo(MacAddr(0xb), MacAddr(0xa), 50, uint8_t(i)));
    fabric.run(20000);
    EXPECT_EQ(sw->stats().packetsIn.value(), 50u);
    EXPECT_EQ(sw->stats().packetsOut.value(), 50u);
    EXPECT_EQ(sw->stats().packetsDropped.value(), 0u);
    ASSERT_EQ(b->received.size(), 50u);
}

/** Three endpoints on a 3-port switch for routing/broadcast tests. */
class ThreePortSwitchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SwitchConfig cfg;
        cfg.name = "tor3";
        cfg.ports = 3;
        cfg.minLatency = 10;
        sw = std::make_unique<Switch>(cfg);
        for (int i = 0; i < 3; ++i) {
            eps.push_back(std::make_unique<ScriptedEndpoint>(
                std::string("ep") + std::to_string(i)));
            fabric.addEndpoint(eps.back().get());
        }
        fabric.addEndpoint(sw.get());
        for (uint32_t i = 0; i < 3; ++i) {
            sw->addMacEntry(MacAddr(0x10 + i), i);
            fabric.connect(eps[i].get(), 0, sw.get(), i, 100);
        }
        fabric.finalize();
    }

    TokenFabric fabric;
    std::unique_ptr<Switch> sw;
    std::vector<std::unique_ptr<ScriptedEndpoint>> eps;
};

TEST_F(ThreePortSwitchTest, MacTableRoutesToCorrectPort)
{
    eps[0]->sendAt(0, frameTo(MacAddr(0x12), MacAddr(0x10), 10));
    fabric.run(2000);
    EXPECT_EQ(eps[1]->received.size(), 0u);
    ASSERT_EQ(eps[2]->received.size(), 1u);
    EXPECT_EQ(eps[2]->received[0].second.src(), MacAddr(0x10));
}

TEST_F(ThreePortSwitchTest, BroadcastDuplicatesToAllPorts)
{
    eps[0]->sendAt(0, frameTo(MacAddr::broadcast(), MacAddr(0x10), 10));
    fabric.run(2000);
    EXPECT_EQ(eps[1]->received.size(), 1u);
    EXPECT_EQ(eps[2]->received.size(), 1u);
    EXPECT_EQ(sw->stats().broadcasts.value(), 1u);
}

TEST_F(ThreePortSwitchTest, UnknownUnicastFloods)
{
    eps[0]->sendAt(0, frameTo(MacAddr(0x99), MacAddr(0x10), 10));
    fabric.run(2000);
    EXPECT_EQ(eps[1]->received.size(), 1u);
    EXPECT_EQ(eps[2]->received.size(), 1u);
}

TEST_F(ThreePortSwitchTest, ContendingSendersShareOutputLink)
{
    // ep0 and ep1 each send a 400-byte (50-flit... 414B -> 52 flit)
    // packet to ep2 at the same cycle; output serializes them, so the
    // second frame finishes ~one frame time after the first.
    EthFrame f0 = frameTo(MacAddr(0x12), MacAddr(0x10), 400, 1);
    EthFrame f1 = frameTo(MacAddr(0x12), MacAddr(0x11), 400, 2);
    eps[0]->sendAt(0, f0);
    eps[1]->sendAt(0, f1);
    fabric.run(4000);
    ASSERT_EQ(eps[2]->received.size(), 2u);
    Cycles gap = eps[2]->received[1].first - eps[2]->received[0].first;
    EXPECT_EQ(gap, f0.flitCount());
}

TEST_F(ThreePortSwitchTest, TimestampTiesResolveDeterministically)
{
    // Same-timestamp packets from different ports drain in arrival
    // (seq) order; run twice and require identical outcomes.
    std::vector<uint8_t> first_run;
    for (int rep = 0; rep < 2; ++rep) {
        SwitchConfig cfg;
        cfg.ports = 3;
        cfg.minLatency = 10;
        Switch sw2(cfg);
        sw2.addMacEntry(MacAddr(0x12), 2);
        ScriptedEndpoint a("a"), b("b"), c("c");
        TokenFabric fab;
        fab.addEndpoint(&a);
        fab.addEndpoint(&b);
        fab.addEndpoint(&c);
        fab.addEndpoint(&sw2);
        fab.connect(&a, 0, &sw2, 0, 100);
        fab.connect(&b, 0, &sw2, 1, 100);
        fab.connect(&c, 0, &sw2, 2, 100);
        fab.finalize();
        a.sendAt(0, frameTo(MacAddr(0x12), MacAddr(0x10), 20, 0xaa));
        b.sendAt(0, frameTo(MacAddr(0x12), MacAddr(0x11), 20, 0xbb));
        fab.run(2000);
        ASSERT_EQ(c.received.size(), 2u);
        std::vector<uint8_t> tags = {c.received[0].second.payload()[0],
                                     c.received[1].second.payload()[0]};
        if (rep == 0)
            first_run = tags;
        else
            EXPECT_EQ(first_run, tags);
    }
}

TEST(SwitchDrops, TwoToOneOverloadExceedsDropBound)
{
    // Two senders flood one receiver at an aggregate 2x line rate with a
    // small drop bound: the backlog grows past the bound and the switch
    // must shed packets (finite buffering, Section III-B1).
    SwitchConfig cfg;
    cfg.ports = 3;
    cfg.minLatency = 10;
    cfg.dropBound = 64;
    Switch sw(cfg);
    ScriptedEndpoint a("a"), b("b"), c("c");
    TokenFabric fab;
    fab.addEndpoint(&a);
    fab.addEndpoint(&b);
    fab.addEndpoint(&c);
    fab.addEndpoint(&sw);
    fab.connect(&a, 0, &sw, 0, 100);
    fab.connect(&b, 0, &sw, 1, 100);
    fab.connect(&c, 0, &sw, 2, 100);
    sw.addMacEntry(MacAddr(0x12), 2);
    fab.finalize();

    const int kPackets = 40;
    for (int i = 0; i < kPackets; ++i) {
        // 50B payload -> 8 flits, sent back-to-back from both senders.
        a.sendAt(static_cast<Cycles>(i) * 8,
                 frameTo(MacAddr(0x12), MacAddr(0x10), 50, uint8_t(i)));
        b.sendAt(static_cast<Cycles>(i) * 8,
                 frameTo(MacAddr(0x12), MacAddr(0x11), 50, uint8_t(i)));
    }
    fab.run(20000);
    EXPECT_EQ(sw.stats().packetsIn.value(), 2u * kPackets);
    EXPECT_GT(sw.stats().packetsDropped.value(), 0u);
    EXPECT_EQ(sw.stats().packetsOut.value() +
                  sw.stats().packetsDropped.value(),
              2u * kPackets);
    EXPECT_EQ(c.received.size(), sw.stats().packetsOut.value());
}

TEST_F(TwoServerSwitchTest, DownedPortDropsIngressAndEgress)
{
    build();
    sw->setPortDown(0, true);
    EXPECT_FALSE(sw->portUp(0));
    EXPECT_TRUE(sw->portUp(1));
    a->sendAt(50, frameTo(MacAddr(0xb), MacAddr(0xa), 3, 1)); // ingress
    b->sendAt(50, frameTo(MacAddr(0xa), MacAddr(0xb), 3, 2)); // egress
    fabric.run(1000);
    EXPECT_TRUE(a->received.empty());
    EXPECT_TRUE(b->received.empty());
    // A's 3 flits died at the dead input port; B's packet switched fine
    // but died at the dead output port.
    EXPECT_EQ(sw->stats().faultFlitsDroppedIn.value(), 3u);
    EXPECT_EQ(sw->stats().faultPacketsDroppedOut.value(), 1u);
    EXPECT_EQ(sw->stats().portTransitions.value(), 1u);

    // Restore the port: traffic flows again.
    sw->setPortDown(0, false);
    EXPECT_EQ(sw->stats().portTransitions.value(), 2u);
    a->sendAt(1050, frameTo(MacAddr(0xb), MacAddr(0xa), 3, 3));
    fabric.run(1000);
    ASSERT_EQ(b->received.size(), 1u);
    EXPECT_EQ(b->received[0].second.payload()[0], 3);
}

TEST(SwitchPortDown, RedundantTransitionsDoNotCount)
{
    SwitchConfig cfg;
    cfg.ports = 2;
    Switch sw(cfg);
    sw.setPortDown(1, true);
    sw.setPortDown(1, true); // no-op
    sw.setPortDown(1, false);
    EXPECT_EQ(sw.stats().portTransitions.value(), 2u);
}

TEST(SwitchPortDownDeath, PortRangeChecked)
{
    SwitchConfig cfg;
    cfg.ports = 2;
    Switch sw(cfg);
    EXPECT_EXIT(sw.setPortDown(7, true), ::testing::ExitedWithCode(1),
                "2-port");
}

TEST(SwitchConfigDeath, ZeroPortsRejected)
{
    SwitchConfig cfg;
    cfg.ports = 0;
    EXPECT_EXIT(Switch{cfg}, ::testing::ExitedWithCode(1), "port");
}

TEST(SwitchConfigDeath, MacEntryPortRangeChecked)
{
    SwitchConfig cfg;
    cfg.ports = 2;
    Switch sw(cfg);
    EXPECT_EXIT(sw.addMacEntry(MacAddr(1), 5), ::testing::ExitedWithCode(1),
                "2-port");
}

TEST(SwitchStats, BytesOutDeltaResetsOnQuery)
{
    SwitchConfig cfg;
    cfg.ports = 2;
    cfg.minLatency = 10;
    Switch sw(cfg);
    sw.addMacEntry(MacAddr(0xb), 1);
    ScriptedEndpoint a("a"), b("b");
    TokenFabric fab;
    fab.addEndpoint(&a);
    fab.addEndpoint(&b);
    fab.addEndpoint(&sw);
    fab.connect(&a, 0, &sw, 0, 100);
    fab.connect(&b, 0, &sw, 1, 100);
    fab.finalize();
    EthFrame f = frameTo(MacAddr(0xb), MacAddr(0xa), 100);
    a.sendAt(0, f);
    fab.run(2000);
    EXPECT_EQ(sw.takeBytesOutDelta(), f.size());
    EXPECT_EQ(sw.takeBytesOutDelta(), 0u);
}

} // namespace
} // namespace firesim
