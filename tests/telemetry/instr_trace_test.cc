#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "base/thread_pool.hh"
#include "riscv/assembler.hh"
#include "riscv/core.hh"
#include "telemetry/instr_trace.hh"

namespace firesim
{
namespace
{

using namespace regs;

TEST(InstructionTrace, RecordsInCommitOrder)
{
    InstructionTrace trace(16);
    trace.record(0x1000, OpClass::IntAlu, 1);
    trace.record(0x1004, OpClass::Load, 3);
    trace.record(0x1008, OpClass::Branch, 4);

    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.committed(), 3u);
    EXPECT_EQ(trace.dropped(), 0u);

    std::vector<TraceRecord> recs = trace.drain();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].pc, 0x1000u);
    EXPECT_EQ(recs[1].cls, OpClass::Load);
    EXPECT_EQ(recs[2].cycle, 4u);
    EXPECT_EQ(trace.size(), 0u); // drained
    EXPECT_EQ(trace.committed(), 3u); // lifetime total survives drain
}

TEST(InstructionTrace, RingOverflowKeepsNewest)
{
    InstructionTrace trace(4);
    for (uint64_t i = 0; i < 10; ++i)
        trace.record(0x1000 + 4 * i, OpClass::IntAlu, i);

    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.committed(), 10u);
    EXPECT_EQ(trace.dropped(), 6u);

    std::vector<TraceRecord> recs = trace.drain();
    ASSERT_EQ(recs.size(), 4u);
    // The newest four commits, still in commit order.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(recs[i].cycle, 6 + i);
        EXPECT_EQ(recs[i].pc, 0x1000u + 4 * (6 + i));
    }
}

TEST(InstructionTrace, CompressedRoundTrip)
{
    InstructionTrace trace(64);
    // Loopy pattern with forward and backward pc deltas.
    for (int iter = 0; iter < 5; ++iter) {
        trace.record(0x80000000, OpClass::IntAlu, 10 * iter + 1);
        trace.record(0x80000004, OpClass::Load, 10 * iter + 3);
        trace.record(0x80000008, OpClass::Branch, 10 * iter + 4);
    }
    std::string bytes = trace.encodeCompressed();
    // Delta coding should beat the 17-byte raw record handily.
    EXPECT_LT(bytes.size(), 17u * 15u / 2);

    std::vector<TraceRecord> decoded =
        InstructionTrace::decodeCompressed(bytes);
    std::vector<TraceRecord> original = trace.drain();
    ASSERT_EQ(decoded.size(), original.size());
    for (size_t i = 0; i < decoded.size(); ++i)
        EXPECT_TRUE(decoded[i] == original[i]);
}

TEST(InstructionTraceDeath, CorruptStreamPanics)
{
    EXPECT_DEATH(InstructionTrace::decodeCompressed("junk"), "");
}

TEST(InstructionTrace, ParallelEncodeIsByteIdentical)
{
    // A trace large enough to clear the parallel-encode threshold, with
    // a wrapped ring (the chunker must honor head offsets) and varied
    // deltas (chunk-boundary predecessors matter).
    InstructionTrace trace(8192);
    uint64_t pc = 0x80000000;
    for (uint64_t i = 0; i < 10000; ++i) { // 10000 > 8192: ring wraps
        pc += (i % 7 == 0) ? 0xfffffffffffffff8ull : 4; // back branches
        trace.record(pc, static_cast<OpClass>(i % 8), 2 * i + 1);
    }
    ASSERT_EQ(trace.size(), 8192u);

    std::string serial = trace.encodeCompressed();
    for (unsigned width : {2u, 3u, 8u}) {
        ThreadPool pool(width);
        EXPECT_EQ(trace.encodeCompressed(&pool), serial)
            << "width " << width;
    }
    // Null pool and width-1 pool take the serial path.
    EXPECT_EQ(trace.encodeCompressed(nullptr), serial);
    ThreadPool one(1);
    EXPECT_EQ(trace.encodeCompressed(&one), serial);

    // The bytes still decode to the retained records.
    std::vector<TraceRecord> decoded =
        InstructionTrace::decodeCompressed(serial);
    std::vector<TraceRecord> original = trace.drain();
    ASSERT_EQ(decoded.size(), original.size());
    for (size_t i = 0; i < decoded.size(); ++i)
        ASSERT_TRUE(decoded[i] == original[i]) << "record " << i;
}

TEST(InstructionTrace, SmallTraceFallsBackToSerialEncoder)
{
    InstructionTrace trace(64);
    for (int i = 0; i < 10; ++i)
        trace.record(0x1000 + 4 * i, OpClass::IntAlu, i + 1);
    ThreadPool pool(4);
    EXPECT_EQ(trace.encodeCompressed(&pool), trace.encodeCompressed());
}

TEST(InstructionTrace, FileDumpRoundTrip)
{
    InstructionTrace trace(8);
    trace.record(0x2000, OpClass::Store, 7);
    trace.record(0x2004, OpClass::Jump, 9);

    std::string path = ::testing::TempDir() + "fsit_roundtrip.bin";
    ASSERT_TRUE(trace.writeCompressed(path));
    std::vector<TraceRecord> back = InstructionTrace::readCompressed(path);
    std::remove(path.c_str());

    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].pc, 0x2000u);
    EXPECT_EQ(back[1].cls, OpClass::Jump);
}

TEST(HotnessProfile, RanksByCommitCount)
{
    HotnessProfile prof;
    for (int i = 0; i < 10; ++i)
        prof.add(TraceRecord{0x1000, static_cast<uint64_t>(i),
                             OpClass::IntAlu});
    for (int i = 0; i < 3; ++i)
        prof.add(TraceRecord{0x2000, static_cast<uint64_t>(i),
                             OpClass::Load});
    prof.add(TraceRecord{0x3000, 0, OpClass::Branch});

    EXPECT_EQ(prof.total(), 14u);
    std::vector<HotnessProfile::Entry> top = prof.top(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].pc, 0x1000u);
    EXPECT_EQ(top[0].commits, 10u);
    EXPECT_EQ(top[1].pc, 0x2000u);

    std::string report = prof.report(3);
    EXPECT_NE(report.find("1000"), std::string::npos);
    EXPECT_NE(report.find("load"), std::string::npos);
}

/** A core running a small loop, with and without a tracer. */
struct TracedCoreFixture : public ::testing::Test
{
    TracedCoreFixture() : mem(64 * MiB), hier(1)
    {
        core = std::make_unique<RocketCore>(CoreConfig{}, mem, hier, &bus);
        mapStandardDevices(bus, *core);
    }

    /** count down from @p n to zero, then halt — a loop with ALU,
     *  branch, load and store traffic. */
    void
    loopProgram(int64_t n)
    {
        Assembler a(mem, memmap::kDramBase);
        a.li(a0, n);
        a.li(t1, static_cast<int64_t>(memmap::kDramBase + 0x10000));
        Assembler::Label loop = a.newLabel();
        a.bind(loop);
        a.sd(a0, t1, 0);
        a.ld(t2, t1, 0);
        a.addi(a0, a0, -1);
        a.bne(a0, zero, loop);
        a.halt(zero);
        a.finalize();
    }

    FunctionalMemory mem;
    MemHierarchy hier;
    MmioBus bus;
    std::unique_ptr<RocketCore> core;
};

TEST_F(TracedCoreFixture, TraceMatchesExecution)
{
    loopProgram(8);
    InstructionTrace trace(1 << 12);
    core->setTracer(&trace);
    auto r = core->run();
    ASSERT_TRUE(r.halted);

    // Every commit was recorded (ring was large enough).
    EXPECT_EQ(trace.committed(), r.instret);
    EXPECT_EQ(trace.dropped(), 0u);

    std::vector<TraceRecord> recs = trace.drain();
    ASSERT_EQ(recs.size(), r.instret);
    // Cycles are nondecreasing in commit order and the loop body pcs
    // repeat: the sd at the loop head commits 8 times.
    uint64_t loop_head_commits = 0;
    for (size_t i = 1; i < recs.size(); ++i)
        EXPECT_GE(recs[i].cycle, recs[i - 1].cycle);
    for (const TraceRecord &rec : recs)
        loop_head_commits += (rec.pc == recs[4].pc) ? 1 : 0;
    EXPECT_EQ(loop_head_commits, 8u);
    // Class mix: the loop commits loads, stores and branches.
    uint64_t loads = 0, stores = 0, branches = 0;
    for (const TraceRecord &rec : recs) {
        loads += rec.cls == OpClass::Load;
        stores += rec.cls == OpClass::Store;
        branches += rec.cls == OpClass::Branch;
    }
    EXPECT_EQ(loads, core->stats().loads);
    EXPECT_EQ(stores, core->stats().stores);
    EXPECT_EQ(branches, core->stats().branches);
}

TEST_F(TracedCoreFixture, TracingIsInvisibleToTheTarget)
{
    // Identical program, tracer on vs off: identical cycle totals,
    // instret, and architectural exit state.
    loopProgram(50);
    InstructionTrace trace(1 << 12);
    core->setTracer(&trace);
    auto traced = core->run();

    FunctionalMemory mem2(64 * MiB);
    MemHierarchy hier2(1);
    MmioBus bus2;
    RocketCore plain(CoreConfig{}, mem2, hier2, &bus2);
    mapStandardDevices(bus2, plain);
    Assembler a(mem2, memmap::kDramBase);
    a.li(a0, 50);
    a.li(t1, static_cast<int64_t>(memmap::kDramBase + 0x10000));
    Assembler::Label loop = a.newLabel();
    a.bind(loop);
    a.sd(a0, t1, 0);
    a.ld(t2, t1, 0);
    a.addi(a0, a0, -1);
    a.bne(a0, zero, loop);
    a.halt(zero);
    a.finalize();
    auto untraced = plain.run();

    EXPECT_EQ(traced.cycles, untraced.cycles);
    EXPECT_EQ(traced.instret, untraced.instret);
    EXPECT_EQ(traced.exitCode, untraced.exitCode);
    EXPECT_GT(trace.committed(), 0u);
}

TEST_F(TracedCoreFixture, TraceIsBitIdenticalAcrossRuns)
{
    // Two fresh cores, same program: the compressed byte streams must
    // match exactly (deterministic replay, ISSUE acceptance criterion).
    std::string bytes[2];
    for (int run = 0; run < 2; ++run) {
        FunctionalMemory m(64 * MiB);
        MemHierarchy h(1);
        MmioBus b;
        RocketCore c(CoreConfig{}, m, h, &b);
        mapStandardDevices(b, c);
        Assembler a(m, memmap::kDramBase);
        a.li(a0, 20);
        Assembler::Label loop = a.newLabel();
        a.bind(loop);
        a.addi(a0, a0, -1);
        a.bne(a0, zero, loop);
        a.halt(zero);
        a.finalize();
        InstructionTrace trace(1 << 12);
        c.setTracer(&trace);
        c.run();
        bytes[run] = trace.encodeCompressed();
    }
    EXPECT_GT(bytes[0].size(), 0u);
    EXPECT_EQ(bytes[0], bytes[1]);
}

TEST_F(TracedCoreFixture, HotnessFindsTheLoop)
{
    loopProgram(100);
    InstructionTrace trace(1 << 12);
    core->setTracer(&trace);
    core->run();

    HotnessProfile prof;
    prof.add(trace.drain());
    std::vector<HotnessProfile::Entry> top = prof.top(4);
    ASSERT_EQ(top.size(), 4u);
    // The four loop-body instructions dominate: ~100 commits each.
    for (const auto &e : top)
        EXPECT_GE(e.commits, 100u);
}

} // namespace
} // namespace firesim
