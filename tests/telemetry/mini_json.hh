/**
 * @file
 * A deliberately tiny recursive-descent JSON parser, just enough to
 * *validate* the telemetry dumps (stats.json, autocounter json, Chrome
 * trace documents) by parsing them back instead of grepping substrings.
 * Test-only: no error recovery, throws std::runtime_error on malformed
 * input, which a test turns into a failure.
 */

#ifndef FIRESIM_TESTS_TELEMETRY_MINI_JSON_HH
#define FIRESIM_TESTS_TELEMETRY_MINI_JSON_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace firesim
{
namespace minijson
{

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<ValuePtr> array;
    std::map<std::string, ValuePtr> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    bool has(const std::string &key) const
    {
        return isObject() && object.count(key) > 0;
    }

    const Value &
    at(const std::string &key) const
    {
        if (!has(key))
            throw std::runtime_error("missing key: " + key);
        return *object.at(key);
    }

    const Value &
    at(size_t i) const
    {
        if (!isArray() || i >= array.size())
            throw std::runtime_error("bad array index");
        return *array.at(i);
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos != s.size())
            throw std::runtime_error("trailing garbage after JSON value");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            throw std::runtime_error("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos));
        ++pos;
    }

    ValuePtr
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    ValuePtr
    parseObject()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            ValuePtr key = parseString();
            expect(':');
            v->object[key->str] = parseValue();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    ValuePtr
    parseArray()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v->array.push_back(parseValue());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::String;
        expect('"');
        while (true) {
            if (pos >= s.size())
                throw std::runtime_error("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos >= s.size())
                    throw std::runtime_error("dangling escape");
                char e = s[pos++];
                switch (e) {
                  case '"': v->str.push_back('"'); break;
                  case '\\': v->str.push_back('\\'); break;
                  case '/': v->str.push_back('/'); break;
                  case 'n': v->str.push_back('\n'); break;
                  case 't': v->str.push_back('\t'); break;
                  case 'r': v->str.push_back('\r'); break;
                  case 'b': v->str.push_back('\b'); break;
                  case 'f': v->str.push_back('\f'); break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        throw std::runtime_error("short \\u escape");
                    // Validation only: keep the raw escape text.
                    v->str += "\\u" + s.substr(pos, 4);
                    pos += 4;
                    break;
                  }
                  default:
                    throw std::runtime_error("bad escape");
                }
            } else {
                v->str.push_back(c);
            }
        }
    }

    ValuePtr
    parseBool()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Bool;
        if (s.compare(pos, 4, "true") == 0) {
            v->boolean = true;
            pos += 4;
        } else if (s.compare(pos, 5, "false") == 0) {
            v->boolean = false;
            pos += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    ValuePtr
    parseNull()
    {
        if (s.compare(pos, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos += 4;
        return std::make_shared<Value>();
    }

    ValuePtr
    parseNumber()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Number;
        size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E'))
            ++pos;
        if (pos == start)
            throw std::runtime_error("expected a number at offset " +
                                     std::to_string(pos));
        char *end = nullptr;
        std::string tok = s.substr(start, pos - start);
        v->number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            throw std::runtime_error("malformed number: " + tok);
        return v;
    }

    const std::string &s;
    size_t pos = 0;
};

inline ValuePtr
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace minijson
} // namespace firesim

#endif // FIRESIM_TESTS_TELEMETRY_MINI_JSON_HH
