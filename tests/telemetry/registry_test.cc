#include <gtest/gtest.h>

#include "base/stats.hh"
#include "telemetry/stat_registry.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

TEST(StatRegistry, RegisterAndSnapshot)
{
    StatRegistry reg;
    Counter c;
    c += 7;
    reg.registerCounter("cluster.switch0.packetsIn", c);
    reg.registerProbe("cluster.node0.ipc", [] { return 0.75; });

    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.has("cluster.switch0.packetsIn"));
    EXPECT_FALSE(reg.has("cluster.switch1.packetsIn"));

    StatSnapshot snap = reg.snapshot(1234);
    EXPECT_EQ(snap.at, 1234u);
    EXPECT_DOUBLE_EQ(snap.value("cluster.switch0.packetsIn"), 7.0);
    EXPECT_DOUBLE_EQ(snap.value("cluster.node0.ipc"), 0.75);
    EXPECT_EQ(snap.find("not.there"), nullptr);
}

TEST(StatRegistry, ProbesReadLiveValues)
{
    StatRegistry reg;
    Counter c;
    reg.registerCounter("a.b", c);
    EXPECT_DOUBLE_EQ(reg.snapshot().value("a.b"), 0.0);
    c += 42;
    EXPECT_DOUBLE_EQ(reg.snapshot().value("a.b"), 42.0);
}

TEST(StatRegistry, NamesAreSorted)
{
    StatRegistry reg;
    reg.registerProbe("z.last", [] { return 1.0; });
    reg.registerProbe("a.first", [] { return 2.0; });
    reg.registerProbe("m.middle", [] { return 3.0; });
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "m.middle");
    EXPECT_EQ(names[2], "z.last");
}

TEST(StatRegistry, HistogramExpandsToDerivedScalars)
{
    StatRegistry reg;
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i));
    reg.registerHistogram("net.rtt", h);

    StatSnapshot snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.value("net.rtt.count"), 100.0);
    EXPECT_DOUBLE_EQ(snap.value("net.rtt.mean"), 50.5);
    // Nearest-rank percentiles: values that actually occurred.
    EXPECT_DOUBLE_EQ(snap.value("net.rtt.p50"), 50.0);
    EXPECT_DOUBLE_EQ(snap.value("net.rtt.p99"), 99.0);
}

TEST(StatRegistryDeath, DuplicateNamePanics)
{
    StatRegistry reg;
    reg.registerProbe("a.b", [] { return 0.0; });
    EXPECT_DEATH(reg.registerProbe("a.b", [] { return 1.0; }),
                 "collision");
}

TEST(StatRegistryDeath, MalformedNamesPanic)
{
    StatRegistry reg;
    EXPECT_DEATH(reg.registerProbe("", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe(".leading", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe("trailing.", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe("two..dots", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe("bad char", [] { return 0.0; }), "");
}

TEST(StatRegistry, DiffBetweenCheckpoints)
{
    StatRegistry reg;
    Counter c;
    Counter d;
    reg.registerCounter("x.c", c);
    reg.registerCounter("x.d", d);

    c += 10;
    StatSnapshot before = reg.snapshot(1000);
    c += 5;
    d += 2;
    StatSnapshot after = reg.snapshot(1800);

    StatSnapshot delta = diffSnapshots(before, after);
    EXPECT_EQ(delta.at, 800u); // elapsed cycles
    EXPECT_DOUBLE_EQ(delta.value("x.c"), 5.0);
    EXPECT_DOUBLE_EQ(delta.value("x.d"), 2.0);
}

TEST(StatRegistryDeath, DiffRequiresMatchingNameSets)
{
    StatRegistry a, b;
    Counter c;
    a.registerCounter("only.in.a", c);
    b.registerCounter("only.in.b", c);
    StatSnapshot sa = a.snapshot(0);
    StatSnapshot sb = b.snapshot(10);
    EXPECT_DEATH(diffSnapshots(sa, sb), "");
}

TEST(StatRegistry, JsonDumpParsesBack)
{
    StatRegistry reg;
    Counter c;
    c += 123456789;
    reg.registerCounter("cluster.switch0.bytesOut", c);
    reg.registerProbe("cluster.node0.ipc", [] { return 0.625; });

    minijson::ValuePtr doc = minijson::parse(reg.dumpJson(4242));
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->at("cycle").number, 4242.0);
    const minijson::Value &stats = doc->at("stats");
    ASSERT_TRUE(stats.isObject());
    EXPECT_DOUBLE_EQ(stats.at("cluster.switch0.bytesOut").number,
                     123456789.0);
    EXPECT_DOUBLE_EQ(stats.at("cluster.node0.ipc").number, 0.625);
}

TEST(StatRegistry, CsvDumpIsWellFormed)
{
    StatRegistry reg;
    Counter c;
    c += 3;
    reg.registerCounter("a.one", c);
    reg.registerProbe("b.two", [] { return 1.5; });

    std::string csv = reg.dumpCsv(77);
    EXPECT_EQ(csv, "# cycle 77\nstat,value\na.one,3\nb.two,1.5\n");
}

TEST(StatRegistry, IntegersDumpWithoutExponent)
{
    // Counters are doubles internally but must print as integers in
    // dumps (a bytes counter of 1e9 must not read "1e+09").
    EXPECT_EQ(StatRegistry::formatValue(1e9), "1000000000");
    EXPECT_EQ(StatRegistry::formatValue(0.0), "0");
    EXPECT_EQ(StatRegistry::formatValue(2.5), "2.5");
}

TEST(StatRegistry, JsonEscapesQuotesAndBackslashesInNames)
{
    // Names accept any printable ASCII now (workload labels like
    // net."eth0".rx are legal), so the JSON dump must escape them —
    // a quote in a stat name used to tear the document.
    StatRegistry reg;
    reg.registerProbe("net.\"eth0\".rx", [] { return 7.0; });
    reg.registerProbe("disk.c:\\scratch.writes", [] { return 3.0; });

    minijson::ValuePtr doc = minijson::parse(reg.dumpJson(10));
    const minijson::Value &stats = doc->at("stats");
    ASSERT_TRUE(stats.isObject());
    EXPECT_DOUBLE_EQ(stats.at("net.\"eth0\".rx").number, 7.0);
    EXPECT_DOUBLE_EQ(stats.at("disk.c:\\scratch.writes").number, 3.0);
}

TEST(StatRegistry, CsvQuotesNamesThatNeedIt)
{
    // RFC-4180: fields containing commas or quotes are quoted, with
    // embedded quotes doubled; plain names stay unquoted.
    StatRegistry reg;
    reg.registerProbe("a.plain", [] { return 1.0; });
    reg.registerProbe("b.with,comma", [] { return 2.0; });
    reg.registerProbe("c.with\"quote", [] { return 3.0; });

    EXPECT_EQ(reg.dumpCsv(5),
              "# cycle 5\nstat,value\n"
              "a.plain,1\n"
              "\"b.with,comma\",2\n"
              "\"c.with\"\"quote\",3\n");
}

TEST(StatRegistryDeath, ControlAndNonAsciiCharsStillPanic)
{
    // The relaxation stops at printable ASCII: spaces, control bytes
    // and high-bit bytes stay fatal (they would poison every dump
    // format at once).
    StatRegistry reg;
    EXPECT_DEATH(reg.registerProbe("a b", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe("a\tb", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe("a\x01b", [] { return 0.0; }), "");
    EXPECT_DEATH(reg.registerProbe("a\xc3\xa9", [] { return 0.0; }),
                 "");
}

} // namespace
} // namespace firesim
