#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/eth.hh"
#include "net/fabric.hh"
#include "telemetry/auto_counter.hh"
#include "telemetry/stat_registry.hh"
#include "tests/net/scripted_endpoint.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

/** Two scripted endpoints on a fabric with a known link latency, plus
 *  a registry with one live counter driven by the test. */
struct SamplerFixture : public ::testing::Test
{
    SamplerFixture()
        : a(std::make_unique<ScriptedEndpoint>("a")),
          b(std::make_unique<ScriptedEndpoint>("b"))
    {
        fabric.addEndpoint(a.get());
        fabric.addEndpoint(b.get());
        fabric.connect(a.get(), 0, b.get(), 0, 100); // quantum = 100
        fabric.finalize();
        reg.registerCounter("test.events", events);
    }

    TokenFabric fabric;
    std::unique_ptr<ScriptedEndpoint> a;
    std::unique_ptr<ScriptedEndpoint> b;
    StatRegistry reg;
    Counter events;
};

TEST_F(SamplerFixture, SamplesAtExactPeriodMultiples)
{
    // Period == quantum: one sample per round, stamped at round ends.
    AutoCounterSampler sampler(reg, 100);
    sampler.attachTo(fabric);
    fabric.run(500);

    ASSERT_EQ(sampler.series().size(), 5u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(sampler.series()[i].at, (i + 1) * 100);
}

TEST_F(SamplerFixture, PeriodNotDividingQuantumStampsMultiples)
{
    // Period 150 against quantum 100: samples due at 150, 300, 450...
    // are taken at the end of the first round covering each, but
    // stamped with the exact multiple.
    AutoCounterSampler sampler(reg, 150);
    sampler.attachTo(fabric);
    fabric.run(600);

    ASSERT_EQ(sampler.series().size(), 4u);
    EXPECT_EQ(sampler.series()[0].at, 150u);
    EXPECT_EQ(sampler.series()[1].at, 300u);
    EXPECT_EQ(sampler.series()[2].at, 450u);
    EXPECT_EQ(sampler.series()[3].at, 600u);
}

TEST_F(SamplerFixture, PeriodLargerThanQuantumSkipsRounds)
{
    AutoCounterSampler sampler(reg, 250);
    sampler.attachTo(fabric);
    fabric.run(1000);
    ASSERT_EQ(sampler.series().size(), 4u);
    EXPECT_EQ(sampler.series()[0].at, 250u);
    EXPECT_EQ(sampler.series()[3].at, 1000u);
}

TEST_F(SamplerFixture, CapturesLiveCounterValues)
{
    AutoCounterSampler sampler(reg, 100);
    sampler.attachTo(fabric);

    events += 3;
    fabric.run(100);
    events += 4;
    fabric.run(100);

    ASSERT_EQ(sampler.series().size(), 2u);
    ASSERT_EQ(sampler.columns().size(), 1u);
    EXPECT_EQ(sampler.columns()[0], "test.events");
    EXPECT_DOUBLE_EQ(sampler.series()[0].values[0], 3.0);
    EXPECT_DOUBLE_EQ(sampler.series()[1].values[0], 7.0);

    std::vector<double> delta = sampler.deltaSeries("test.events");
    ASSERT_EQ(delta.size(), 2u);
    EXPECT_DOUBLE_EQ(delta[0], 3.0);
    EXPECT_DOUBLE_EQ(delta[1], 4.0);
}

TEST_F(SamplerFixture, CsvIsWellFormed)
{
    AutoCounterSampler sampler(reg, 100);
    sampler.attachTo(fabric);
    events += 2;
    fabric.run(200);

    std::istringstream csv(sampler.csv());
    std::string line;
    ASSERT_TRUE(std::getline(csv, line));
    EXPECT_EQ(line, "cycle,test.events");
    ASSERT_TRUE(std::getline(csv, line));
    EXPECT_EQ(line, "100,2");
    ASSERT_TRUE(std::getline(csv, line));
    EXPECT_EQ(line, "200,2");
    EXPECT_FALSE(std::getline(csv, line));
}

TEST_F(SamplerFixture, JsonParsesBack)
{
    AutoCounterSampler sampler(reg, 100);
    sampler.attachTo(fabric);
    events += 9;
    fabric.run(100);

    minijson::ValuePtr doc = minijson::parse(sampler.json());
    EXPECT_DOUBLE_EQ(doc->at("period").number, 100.0);
    EXPECT_EQ(doc->at("columns").at(0).str, "test.events");
    const minijson::Value &samples = doc->at("samples");
    ASSERT_EQ(samples.array.size(), 1u);
    EXPECT_DOUBLE_EQ(samples.at(0).at(0).number, 100.0);
    EXPECT_DOUBLE_EQ(samples.at(0).at(1).number, 9.0);
}

TEST_F(SamplerFixture, SamplingDoesNotPerturbDelivery)
{
    // The out-of-band guarantee at frame granularity: arrival cycles
    // with a sampler attached equal arrival cycles without one.
    EthFrame frame(MacAddr(0xb), MacAddr(0xa), EtherType::Raw,
                   std::vector<uint8_t>(64, 0x5a));

    Cycles plain_arrival = 0;
    {
        auto tx = std::make_unique<ScriptedEndpoint>("tx");
        auto rx = std::make_unique<ScriptedEndpoint>("rx");
        TokenFabric f;
        f.addEndpoint(tx.get());
        f.addEndpoint(rx.get());
        f.connect(tx.get(), 0, rx.get(), 0, 100);
        f.finalize();
        tx->sendAt(10, frame);
        f.run(1000);
        ASSERT_EQ(rx->received.size(), 1u);
        plain_arrival = rx->received[0].first;
    }

    Cycles sampled_arrival = 0;
    {
        auto tx = std::make_unique<ScriptedEndpoint>("tx");
        auto rx = std::make_unique<ScriptedEndpoint>("rx");
        TokenFabric f;
        f.addEndpoint(tx.get());
        f.addEndpoint(rx.get());
        f.connect(tx.get(), 0, rx.get(), 0, 100);
        f.finalize();
        StatRegistry r;
        Counter c;
        r.registerCounter("x.y", c);
        AutoCounterSampler sampler(r, 70);
        sampler.attachTo(f);
        tx->sendAt(10, frame);
        f.run(1000);
        ASSERT_EQ(rx->received.size(), 1u);
        sampled_arrival = rx->received[0].first;
        EXPECT_GT(sampler.series().size(), 0u);
    }

    EXPECT_EQ(plain_arrival, sampled_arrival);
}

TEST(AutoCounterSamplerDeath, ZeroPeriodRejected)
{
    StatRegistry reg;
    EXPECT_EXIT(AutoCounterSampler(reg, 0),
                ::testing::ExitedWithCode(1), "period");
}

} // namespace
} // namespace firesim
