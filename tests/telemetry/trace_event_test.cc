#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>

#include "manager/cluster.hh"
#include "manager/topology.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_event.hh"
#include "tests/telemetry/mini_json.hh"

namespace firesim
{
namespace
{

TEST(TraceEventSink, EmitsParseableChromeDocument)
{
    TraceEventSink sink;
    uint32_t id = sink.intern("work");
    sink.complete(id, "phase", 1.0, 2.5, 3);

    minijson::ValuePtr doc = minijson::parse(sink.json());
    ASSERT_TRUE(doc->has("traceEvents"));
    const minijson::Value &events = doc->at("traceEvents");
    ASSERT_EQ(events.array.size(), 1u);
    const minijson::Value &ev = events.at(0);
    EXPECT_EQ(ev.at("name").str, "work");
    EXPECT_EQ(ev.at("cat").str, "phase");
    EXPECT_EQ(ev.at("ph").str, "X");
    EXPECT_DOUBLE_EQ(ev.at("ts").number, 1.0);
    EXPECT_DOUBLE_EQ(ev.at("dur").number, 2.5);
    EXPECT_DOUBLE_EQ(ev.at("tid").number, 3.0);
}

TEST(TraceEventSink, CapDropsAndCounts)
{
    TraceEventSink sink(2);
    uint32_t id = sink.intern("x");
    for (int i = 0; i < 5; ++i)
        sink.complete(id, "phase", i, 1.0);
    EXPECT_EQ(sink.eventCount(), 2u);
    EXPECT_EQ(sink.droppedEvents(), 3u);
    // Still a valid document.
    minijson::ValuePtr doc = minijson::parse(sink.json());
    EXPECT_EQ(doc->at("traceEvents").array.size(), 2u);
}

TEST(TraceEventSink, ScopedSpanRecordsItsLifetime)
{
    TraceEventSink sink;
    uint32_t id = sink.intern("scope");
    {
        ScopedSpan span(sink, id, "phase", 7);
    }
    ASSERT_EQ(sink.eventCount(), 1u);
    minijson::ValuePtr doc = minijson::parse(sink.json());
    const minijson::Value &ev = doc->at("traceEvents").at(0);
    EXPECT_EQ(ev.at("name").str, "scope");
    EXPECT_GE(ev.at("dur").number, 0.0);
}

TEST(SimRateTelemetry, TracksPhases)
{
    SimRateTelemetry rate;
    rate.beginPhase("warmup", 0);
    rate.endPhase(320000);
    ASSERT_EQ(rate.phases().size(), 1u);
    const SimRateTelemetry::Phase &p = rate.phases()[0];
    EXPECT_EQ(p.name, "warmup");
    EXPECT_EQ(p.targetCycles, 320000u);
    EXPECT_GT(p.hostSeconds, 0.0);
    EXPECT_GT(p.cyclesPerHostSecond(), 0.0);

    std::string report = rate.report(3.2);
    EXPECT_NE(report.find("warmup"), std::string::npos);
}

TEST(SimRateTelemetry, ZeroHostTimeReadsZeroNotInfinity)
{
    // A phase whose wall time rounds to zero (or was never measured)
    // must report a 0 rate, not divide by zero — the first round of a
    // fast functional-window run genuinely hits this.
    SimRateTelemetry::Phase p;
    p.name = "instant";
    p.targetCycles = 12345;
    p.hostSeconds = 0.0;
    EXPECT_EQ(p.cyclesPerHostSecond(), 0.0);
}

TEST(SimRateTelemetry, ZeroCyclePhaseHasZeroRate)
{
    // begin/end at the same target cycle: a legal no-op span (e.g. a
    // run(0) probe call). Zero cycles over nonzero host time is 0.
    SimRateTelemetry rate;
    rate.beginPhase("noop", 500);
    rate.endPhase(500);
    ASSERT_EQ(rate.phases().size(), 1u);
    const SimRateTelemetry::Phase &p = rate.phases()[0];
    EXPECT_EQ(p.targetCycles, 0u);
    EXPECT_EQ(p.startCycle, 500u);
    EXPECT_EQ(p.cyclesPerHostSecond(), 0.0);
}

TEST(SimRateTelemetry, PhasesRecordTheirStartCycle)
{
    // startCycle is what lets merged cross-shard traces align lanes
    // on the simulated clock (telemetry/aggregate).
    SimRateTelemetry rate;
    rate.beginPhase("boot", 0);
    rate.endPhase(20000);
    rate.beginPhase("steady", 20000);
    rate.endPhase(50000);
    ASSERT_EQ(rate.phases().size(), 2u);
    EXPECT_EQ(rate.phases()[0].startCycle, 0u);
    EXPECT_EQ(rate.phases()[0].targetCycles, 20000u);
    EXPECT_EQ(rate.phases()[1].startCycle, 20000u);
    EXPECT_EQ(rate.phases()[1].targetCycles, 30000u);
}

/** A 2-node ping cluster with full telemetry. */
static ClusterConfig
telemetryConfig()
{
    ClusterConfig cc;
    cc.linkLatency = 1000;
    cc.telemetry.enabled = true;
    cc.telemetry.samplePeriod = 10000;
    cc.telemetry.hostProfile = true;
    return cc;
}

static Cycles
runPing(Cluster &cluster)
{
    Cycles rtt = 0;
    NodeSystem &n0 = cluster.node(0);
    n0.os().spawn("ping", -1, [&]() -> Task<> {
        rtt = co_await n0.net().ping(Cluster::ipFor(1));
    });
    cluster.runUs(300.0);
    return rtt;
}

TEST(ClusterTelemetry, ChromeTraceCoversRoundsSwitchesAndBlades)
{
    Cluster cluster(topologies::singleTor(2), telemetryConfig());
    Cycles rtt = runPing(cluster);
    ASSERT_GT(rtt, 0u);

    ASSERT_NE(cluster.telemetry(), nullptr);
    minijson::ValuePtr doc =
        minijson::parse(cluster.telemetry()->traceSink().json());

    std::set<std::string> cats;
    std::set<std::string> names;
    for (const minijson::ValuePtr &ev : doc->at("traceEvents").array) {
        cats.insert(ev->at("cat").str);
        names.insert(ev->at("name").str);
    }
    // The acceptance criterion: spans for fabric rounds, switch ticks
    // and blade ticks all present.
    EXPECT_TRUE(cats.count("fabric"));
    EXPECT_TRUE(cats.count("switch"));
    EXPECT_TRUE(cats.count("blade"));
    EXPECT_TRUE(names.count("fabric.round"));
    EXPECT_TRUE(names.count("switch0"));
    EXPECT_TRUE(names.count("node0"));
    EXPECT_TRUE(names.count("node1"));
}

TEST(ClusterTelemetry, RegistryCoversEveryComponent)
{
    Cluster cluster(topologies::singleTor(2), telemetryConfig());
    ASSERT_GT(runPing(cluster), 0u);

    StatRegistry &reg = cluster.telemetry()->registry();
    EXPECT_TRUE(reg.has("cluster.switch0.packetsOut"));
    EXPECT_TRUE(reg.has("cluster.node0.nic.framesSent"));
    EXPECT_TRUE(reg.has("cluster.node1.net.icmpEchoed"));
    EXPECT_TRUE(reg.has("cluster.node0.os.busyCycles"));
    EXPECT_TRUE(reg.has("cluster.node0.blockdev.reads"));
    EXPECT_TRUE(reg.has("cluster.fabric.rounds"));

    StatSnapshot snap = reg.snapshot(cluster.now());
    // The ping flowed: node1 echoed and both switches forwarded.
    EXPECT_GE(snap.value("cluster.node1.net.icmpEchoed"), 1.0);
    EXPECT_GE(snap.value("cluster.switch0.packetsOut"), 2.0);
    EXPECT_GE(snap.value("cluster.node0.nic.framesSent"), 1.0);
}

TEST(ClusterTelemetry, SamplerRunsOnTheClusterFabric)
{
    Cluster cluster(topologies::singleTor(2), telemetryConfig());
    ASSERT_GT(runPing(cluster), 0u);

    AutoCounterSampler *sampler = cluster.telemetry()->sampler();
    ASSERT_NE(sampler, nullptr);
    EXPECT_GT(sampler->series().size(), 0u);
    // Stamps are exact multiples of the period.
    for (const auto &s : sampler->series())
        EXPECT_EQ(s.at % 10000, 0u);
    // The frames-sent column is monotonic.
    std::vector<double> deltas =
        sampler->deltaSeries("cluster.node0.nic.framesSent");
    for (double d : deltas)
        EXPECT_GE(d, 0.0);
}

TEST(ClusterTelemetry, ObserversAreInvisibleToTheTarget)
{
    // The tentpole guarantee, end to end: a full-telemetry run and a
    // telemetry-off run produce identical target-side results — same
    // rtt, same cycle count, same per-node NIC counters.
    ClusterConfig off;
    off.linkLatency = 1000;
    Cluster base(topologies::singleTor(2), off);
    Cycles rtt_off = runPing(base);

    Cluster instrumented(topologies::singleTor(2), telemetryConfig());
    Cycles rtt_on = runPing(instrumented);

    EXPECT_EQ(rtt_off, rtt_on);
    EXPECT_EQ(base.now(), instrumented.now());
    for (size_t i = 0; i < 2; ++i) {
        const NicStats &a = base.node(i).blade().nic().stats();
        const NicStats &b = instrumented.node(i).blade().nic().stats();
        EXPECT_EQ(a.framesSent.value(), b.framesSent.value());
        EXPECT_EQ(a.framesReceived.value(), b.framesReceived.value());
        EXPECT_EQ(a.bytesSent.value(), b.bytesSent.value());
    }
    EXPECT_EQ(base.rootSwitch().stats().bytesOut.value(),
              instrumented.rootSwitch().stats().bytesOut.value());
}

TEST(ClusterTelemetry, SimRatePhasesCoverEveryRunCall)
{
    Cluster cluster(topologies::singleTor(2), telemetryConfig());
    cluster.run(20000);
    cluster.run(30000);
    const auto &phases = cluster.telemetry()->simRate().phases();
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].targetCycles, 20000u);
    EXPECT_EQ(phases[0].startCycle, 0u);
    EXPECT_EQ(phases[1].targetCycles, 30000u);
    EXPECT_EQ(phases[1].startCycle, 20000u);
}

TEST(ClusterTelemetry, DumpAtExitWritesParseableFiles)
{
    std::string dir = ::testing::TempDir() + "fs_telemetry_dump";
    std::remove((dir + "/stats.json").c_str());
#ifdef _WIN32
    _mkdir(dir.c_str());
#else
    mkdir(dir.c_str(), 0755);
#endif
    {
        ClusterConfig cc = telemetryConfig();
        cc.telemetry.dumpDir = dir;
        Cluster cluster(topologies::singleTor(2), cc);
        ASSERT_GT(runPing(cluster), 0u);
    } // ~Cluster dumps

    for (const char *file : {"/stats.json", "/trace.json"}) {
        std::FILE *f = std::fopen((dir + file).c_str(), "rb");
        ASSERT_NE(f, nullptr) << file;
        std::string text;
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, got);
        std::fclose(f);
        EXPECT_NO_THROW(minijson::parse(text)) << file;
        std::remove((dir + file).c_str());
    }
    std::remove((dir + "/autocounter.csv").c_str());
}

TEST(ClusterTelemetry, DisabledConfigBuildsNothing)
{
    ClusterConfig cc;
    Cluster cluster(topologies::singleTor(2), cc);
    EXPECT_EQ(cluster.telemetry(), nullptr);
}

} // namespace
} // namespace firesim
